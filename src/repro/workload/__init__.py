"""Workload generation.

The paper's experiments use a GSTD-like generator (Theodoridis et al.) that
produces an initial distribution of 2-D points in the unit square, a stream
of locality-bounded movements, and a set of uniformly distributed query
windows.  This package re-implements that generator:

* :mod:`repro.workload.distributions` — uniform, Gaussian and skewed initial
  placements, plus a Zipf-skewed hotspot mode for shard-imbalance scenarios;
* :mod:`repro.workload.movement` — per-update movement bounded by a maximum
  distance (Table 1's "maximum distance moved");
* :mod:`repro.workload.queries` — query windows with uniformly distributed
  centres and sizes in ``[0, 0.1]`` (or ``[0, 0.01]`` for the throughput
  experiment);
* :mod:`repro.workload.generator` — :class:`WorkloadGenerator`, which ties the
  pieces together and yields reproducible update/query streams;
* :mod:`repro.workload.spec` — :class:`WorkloadSpec`, the declarative
  description of a workload used by the benchmark harness (it mirrors the
  parameters of the paper's Table 1).
"""

from repro.workload.distributions import (
    gaussian_positions,
    hotspot_positions,
    initial_positions,
    skewed_positions,
    uniform_positions,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.movement import MovementModel
from repro.workload.queries import QueryWorkload
from repro.workload.spec import WorkloadSpec

__all__ = [
    "initial_positions",
    "uniform_positions",
    "gaussian_positions",
    "skewed_positions",
    "hotspot_positions",
    "MovementModel",
    "QueryWorkload",
    "WorkloadGenerator",
    "WorkloadSpec",
]
