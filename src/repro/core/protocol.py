"""The common facade protocol of spatial index implementations.

:class:`SpatialIndexFacade` is the contract every "complete index" in this
repository satisfies: the single-machine
:class:`~repro.core.index.MovingObjectIndex` and the spatially partitioned
:class:`~repro.shard.index.ShardedIndex` are drop-in interchangeable anywhere
a facade is consumed: the online concurrent operation engine, persistence,
the examples, and the figure runners that drive both implementations program
against this surface.  (Some single-index experiment code reaches deeper —
``run_experiment`` reads per-strategy outcome counters and tree statistics
that deliberately have no sharded aggregate.)

The protocol has two halves:

* the **data plane** — ``load`` / ``insert`` / ``update`` / ``delete`` /
  ``range_query`` / ``knn`` plus the batch entry points ``update_many`` and
  ``apply``, and the statistics/validation hooks;
* the **engine SPI** — the hooks the
  :class:`~repro.concurrency.engine.OnlineOperationEngine` needs to schedule
  operations without knowing what kind of index it drives:
  :meth:`lock_requests_for` (predict an operation's DGL granule lock set),
  :meth:`prepare_concurrent_batch` (turn an update batch into schedulable
  virtual operations), and the per-client physical-I/O attribution hooks.
  A sharded index namespaces its granules per shard, which is exactly how
  operations on different shards become conflict-free under one scheduler.

:meth:`engine` is concrete: opening a multi-client session works identically
for every implementation.
"""

from __future__ import annotations

import abc
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.geometry import Point, Rect
from repro.storage import IOStatistics

if TYPE_CHECKING:  # typing only; avoids import cycles at runtime
    from repro.concurrency.engine import ConcurrentSession, PreparedBatch
    from repro.concurrency.locks import LockMode
    from repro.storage.buffer import ClientIOCounters
    from repro.update import UpdateOutcome
    from repro.update.batch import BatchResult


class SpatialIndexFacade(abc.ABC):
    """Abstract surface shared by single and sharded moving-object indexes."""

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def load(self, objects: Iterable[Tuple[int, Point]], bulk: bool = True) -> None:
        """Load the initial set of objects (construction, not measured)."""

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def insert(self, oid: int, location: Point) -> None:
        """Insert a new object."""

    @abc.abstractmethod
    def update(self, oid: int, new_location: Point) -> "UpdateOutcome":
        """Move an existing object to *new_location*."""

    @abc.abstractmethod
    def delete(self, oid: int) -> bool:
        """Remove an object; ``True`` when it existed."""

    @abc.abstractmethod
    def range_query(self, window: Rect) -> List[int]:
        """Object ids whose positions fall inside *window*."""

    @abc.abstractmethod
    def knn(self, point: Point, k: int) -> List[Tuple[float, int]]:
        """The *k* objects nearest to *point* as ``(distance, oid)`` pairs."""

    @abc.abstractmethod
    def position_of(self, oid: int) -> Optional[Point]:
        """Last recorded position of *oid* (``None`` if absent)."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def __contains__(self, oid: int) -> bool: ...

    # ------------------------------------------------------------------
    # Batch operations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def update_many(self, updates: Iterable[Tuple[int, Point]]) -> "BatchResult":
        """Move many existing objects in one group-by-leaf batch."""

    @abc.abstractmethod
    def apply(self, operations: Iterable[Tuple]) -> "BatchResult":
        """Execute a mixed operation stream with batched updates."""

    @abc.abstractmethod
    def parse_updates(self, updates: Iterable[Tuple[int, Point]]) -> List:
        """Overlay-validate an ``(oid, new_position)`` stream into batch ops.

        Raises ``KeyError`` on an unknown oid before anything executes —
        this is the validation front door of both :meth:`update_many` and
        :meth:`~repro.concurrency.engine.ConcurrentSession.update_many`.
        Implementations may pre-commit facade position state for the parsed
        members (the single index does; the sharded index defers to
        execution so migrations still see current positions).
        """

    # ------------------------------------------------------------------
    # Statistics and integrity
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def reset_statistics(self) -> None:
        """Zero the I/O counters and outcome counters."""

    @abc.abstractmethod
    def io_snapshot(self) -> IOStatistics:
        """A copy of the current (aggregated) I/O counters."""

    @abc.abstractmethod
    def validate(self, check_min_fill: bool = False) -> dict:
        """Run the full structural validation; returns statistics."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable one-line summary of the index state."""

    # ------------------------------------------------------------------
    # Engine SPI — lock-scope prediction
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def lock_requests_for(
        self, kind: str, payload: Tuple
    ) -> List[Tuple[Hashable, "LockMode"]]:
        """Predict the granule lock set of one normalised engine operation.

        ``kind``/``payload`` follow the engine's normal form: ``("update",
        (oid, new))``, ``("insert", (oid, location))``, ``("delete",
        (oid,))``, ``("query", (window,))``.  Recomputed on every dispatch
        attempt, so predictions track the live index.
        """

    @abc.abstractmethod
    def prepare_concurrent_batch(
        self, engine, updates: Iterable
    ) -> "PreparedBatch":
        """Turn an update batch into schedulable virtual operations.

        Returns a :class:`~repro.concurrency.engine.PreparedBatch` whose
        operations the engine hands to the scheduler and whose ``finalize``
        callback computes the batch's I/O delta once the schedule drains.
        """

    # ------------------------------------------------------------------
    # Engine SPI — per-client physical-I/O attribution
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def set_active_client(self, client: Optional[Hashable]) -> None:
        """Attribute subsequent physical transfers to *client* (``None`` stops)."""

    @abc.abstractmethod
    def total_physical_io(self) -> int:
        """Aggregated physical I/O count (reads + writes + charged probes)."""

    @abc.abstractmethod
    def reset_client_io(self) -> None:
        """Drop per-client attribution (start of an engine run)."""

    @abc.abstractmethod
    def client_io_table(self) -> Dict[Hashable, "ClientIOCounters"]:
        """Aggregated per-client physical I/O attribution."""

    # ------------------------------------------------------------------
    # Concurrent execution (shared implementation)
    # ------------------------------------------------------------------
    def engine(
        self,
        num_clients: int = 50,
        time_per_io: float = 0.01,
        cpu_time_per_op: float = 0.001,
    ) -> "ConcurrentSession":
        """Open a multi-client session over the online operation engine.

        Virtual clients execute operations concurrently under DGL granule
        locking on a deterministic logical clock: each operation predicts
        its lock scope through :meth:`lock_requests_for`, acquires the locks
        all-or-nothing, blocks on conflict, and runs for real when its locks
        are granted.  Works identically for single and sharded indexes; a
        sharded index namespaces granules per shard, so operations on
        different shards never conflict.
        """
        from repro.concurrency.engine import (  # local: engine imports nothing from core
            ConcurrentSession,
            OnlineOperationEngine,
        )

        return ConcurrentSession(
            OnlineOperationEngine(
                self,
                num_clients=num_clients,
                time_per_io=time_per_io,
                cpu_time_per_op=cpu_time_per_op,
            )
        )
