"""The common facade protocol of spatial index implementations.

:class:`SpatialIndexFacade` is the contract every "complete index" in this
repository satisfies: the single-machine
:class:`~repro.core.index.MovingObjectIndex` and the spatially partitioned
:class:`~repro.shard.index.ShardedIndex` are drop-in interchangeable anywhere
a facade is consumed: the online concurrent operation engine, persistence,
the examples, and the figure runners that drive both implementations program
against this surface.  (Some single-index experiment code reaches deeper —
``run_experiment`` reads per-strategy outcome counters and tree statistics
that deliberately have no sharded aggregate.)

The protocol has two halves:

* the **data plane** — the typed entry points :meth:`execute` /
  :meth:`execute_many` (operating on :class:`repro.api.operations.Operation`
  values, streaming query results through
  :class:`~repro.api.results.QueryCursor`\\ s) together with the direct
  methods ``load`` / ``insert`` / ``update`` / ``delete`` / ``range_query``
  / ``knn``, the batch entry points ``update_many`` and ``apply`` (the
  latter being the deprecated tuple adapter over :meth:`execute_many`), and
  the statistics/validation hooks;
* the **engine SPI** — the hooks the
  :class:`~repro.concurrency.engine.OnlineOperationEngine` needs to schedule
  operations without knowing what kind of index it drives:
  :meth:`lock_requests_for` (predict an operation's DGL granule lock set),
  :meth:`prepare_concurrent_batch` (turn an update batch into schedulable
  virtual operations), and the per-client physical-I/O attribution hooks.
  A sharded index namespaces its granules per shard, which is exactly how
  operations on different shards become conflict-free under one scheduler.

:meth:`engine` is concrete: opening a multi-client session works identically
for every implementation.
"""

from __future__ import annotations

import abc
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

import repro.api.operations as api_ops
from repro.api.errors import InvalidOperationError, OperationError
from repro.api.results import BatchReport, OperationResult, QueryCursor
from repro.geometry import Point, Rect
from repro.storage import IOStatistics

if TYPE_CHECKING:  # typing only; avoids import cycles at runtime
    from pathlib import Path

    from repro.concurrency.engine import ConcurrentSession, PreparedBatch
    from repro.concurrency.locks import LockMode
    from repro.durability.commit import DurabilityManager
    from repro.storage.buffer import ClientIOCounters
    from repro.update import UpdateOutcome
    from repro.update.batch import BatchResult


class SpatialIndexFacade(abc.ABC):
    """Abstract surface shared by single and sharded moving-object indexes."""

    #: Default parameters for sessions opened via :meth:`engine`, set by the
    #: declarative builder (:func:`repro.api.open_index`).  Class-level empty
    #: mapping; builders assign an instance attribute.
    engine_defaults: Mapping[str, Any] = {}

    #: The active parallel-execution spec (``{"backend": ..., "workers": N}``)
    #: or ``None`` for serial execution.  Only the sharded implementation
    #: supports non-serial backends; the class-level default keeps the
    #: attribute readable on every facade.
    parallel_spec: Optional[Mapping[str, Any]] = None

    #: Attached :class:`~repro.durability.commit.DurabilityManager`, or
    #: ``None`` when the index runs without a write-ahead log.  When set,
    #: every mutation is logged **before** it is applied, and checkpoints
    #: rotate the logs (see :mod:`repro.durability`).
    durability: Optional["DurabilityManager"] = None

    def attach_durability(self, manager: "DurabilityManager") -> None:
        """Start write-ahead logging every mutation through *manager*.

        The manager must describe the state the index currently holds (a
        fresh empty index, or one just restored + replayed from the
        manager's own directory) — attaching does not checkpoint; call
        :meth:`checkpoint` (or :meth:`load`, which checkpoints when
        durability is attached) to establish the recovery baseline.
        """
        if self.durability is not None:
            self.durability.close()
        self.durability = manager

    def detach_durability(self) -> None:
        """Stop logging; flushes and closes the logs (no-op when detached)."""
        if self.durability is not None:
            self.durability.close()
            self.durability = None

    def checkpoint(self, path: Optional[Any] = None) -> "Path":
        """Write a checkpoint and — when it lands in the durability
        directory — rotate the write-ahead logs.

        With *path* omitted the checkpoint goes to the attached durability
        manager's ``checkpoint.json`` (requires durability).  An explicit
        *path* elsewhere is a plain export: the logs are left untouched, so
        the durability directory keeps its own recovery timeline.
        """
        from pathlib import Path as _Path

        from repro.core.persistence import save_index  # local: import cycle

        if path is None:
            if self.durability is None:
                raise ValueError(
                    "checkpoint() without a path requires an attached "
                    "durability manager; pass an explicit path instead"
                )
            path = self.durability.checkpoint_path
        save_index(self, path)
        return _Path(path)

    def set_parallel(
        self,
        backend: str = "process",
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        """Attach a shard-execution backend (sharded indexes only).

        The default facade accepts only ``"serial"`` (a no-op); the sharded
        implementation overrides this with the real thread/process backends
        (see :mod:`repro.shard.parallel`).
        """
        if backend != "serial":
            raise ValueError(
                f"parallel backend {backend!r} requires a sharded index"
            )

    def detach_parallel(self) -> None:
        """Return to serial execution (no-op when nothing is attached)."""

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def load(self, objects: Iterable[Tuple[int, Point]], bulk: bool = True) -> None:
        """Load the initial set of objects (construction, not measured)."""

    @abc.abstractmethod
    def configure_buffer(self, percent: Optional[float] = None) -> None:
        """(Re)size the buffer pool as a percentage of the database size.

        A sharded implementation sizes the *aggregate* pool against the
        aggregate database and splits the resulting capacity across its
        shards' pools in proportion to their disk sizes.
        """

    # ------------------------------------------------------------------
    # Typed operation API (v2): one schema for every operation path
    # ------------------------------------------------------------------
    def execute(
        self, operation: "api_ops.OperationLike", strict: bool = True
    ) -> OperationResult:
        """Execute one typed operation and return its result envelope.

        *operation* is an :class:`~repro.api.operations.Operation` (legacy
        tuples are accepted through the deprecated
        :meth:`~repro.api.operations.Operation.from_any` adapter).  Query
        operations return their :class:`~repro.api.results.QueryCursor` in
        ``result.value`` — consuming the cursor advances the underlying
        traversal, so unread results cost no I/O.

        With ``strict=True`` (default) failures raise their structured
        :class:`~repro.api.errors.OperationError`; with ``strict=False``
        *execution* errors are captured on the returned result instead, and
        a ``Delete`` of an absent object degrades to the legacy
        ``False``-returning behaviour.  An operation too malformed to parse
        at all (:class:`~repro.api.errors.InvalidOperationError`) always
        raises — there is no operation to attach a result to.
        """
        op = api_ops.Operation.from_any(operation)
        try:
            if isinstance(op, (api_ops.Update, api_ops.Migrate)):
                return OperationResult(op, outcome=self.update(op.oid, op.new_location))
            if isinstance(op, api_ops.Insert):
                from repro.update import UpdateOutcome  # local: import cycle

                self.insert(op.oid, op.location)
                return OperationResult(op, outcome=UpdateOutcome.INSERTED_NEW)
            if isinstance(op, api_ops.Delete):
                return OperationResult(op, value=self.delete(op.oid, strict=strict))
            if isinstance(op, api_ops.RangeQuery):
                return OperationResult(op, value=self.stream_query(op.window))
            if isinstance(op, api_ops.KNN):
                return OperationResult(op, value=self.stream_knn(op.point, op.k))
        except OperationError as error:
            if strict:
                raise
            return OperationResult(op, error=error)
        raise InvalidOperationError(f"unsupported operation {op!r}")

    def execute_many(
        self,
        operations: Iterable["api_ops.OperationLike"],
        strict: bool = True,
    ) -> BatchReport:
        """Execute a typed operation stream with batched updates.

        Runs of consecutive updates are grouped by leaf and executed with
        one leaf read/write per group; inserts, deletes and queries act as
        barriers, so the stream observes exactly the sequential semantics.
        Query and kNN answers land on the returned
        :class:`~repro.api.results.BatchReport` in stream order.  The whole
        stream is validated before anything executes; under ``strict=True``
        a ``Delete`` of an absent object is an
        :class:`~repro.api.errors.UnknownObjectError` (the legacy adapter
        passes ``strict=False``, where it is a silent no-op).
        """
        return BatchReport.from_batch_result(
            self._execute_operation_stream(operations, strict_deletes=strict)
        )

    @abc.abstractmethod
    def _execute_operation_stream(
        self,
        operations: Iterable["api_ops.OperationLike"],
        strict_deletes: bool,
    ) -> "BatchResult":
        """Validate and run one operation stream (shared by ``execute_many``/``apply``)."""

    @abc.abstractmethod
    def stream_query(self, window: Rect) -> "QueryCursor[int]":
        """A streaming cursor over the objects inside *window*.

        Same answer and order as :meth:`range_query`, but lazily: the tree
        traversal advances only as the cursor is consumed.
        """

    @abc.abstractmethod
    def stream_knn(self, point: Point, k: int) -> "QueryCursor[Tuple[float, int]]":
        """A streaming cursor over the *k* nearest ``(distance, oid)`` pairs."""

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def insert(self, oid: int, location: Point) -> None:
        """Insert a new object (:class:`DuplicateObjectError` when it exists)."""

    @abc.abstractmethod
    def update(self, oid: int, new_location: Point) -> "UpdateOutcome":
        """Move an existing object (:class:`UnknownObjectError` when absent)."""

    @abc.abstractmethod
    def delete(self, oid: int, strict: bool = True) -> bool:
        """Remove an object; ``True`` when it existed.

        With ``strict=True`` (default) deleting an absent object raises
        :class:`~repro.api.errors.UnknownObjectError`, mirroring
        :meth:`update`; ``strict=False`` restores the legacy silent
        ``False`` return.
        """

    @abc.abstractmethod
    def range_query(self, window: Rect) -> List[int]:
        """Object ids whose positions fall inside *window*."""

    @abc.abstractmethod
    def knn(self, point: Point, k: int) -> List[Tuple[float, int]]:
        """The *k* objects nearest to *point* as ``(distance, oid)`` pairs."""

    @abc.abstractmethod
    def position_of(self, oid: int) -> Optional[Point]:
        """Last recorded position of *oid* (``None`` if absent)."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def __contains__(self, oid: int) -> bool: ...

    # ------------------------------------------------------------------
    # Batch operations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def update_many(self, updates: Iterable[Tuple[int, Point]]) -> "BatchResult":
        """Move many existing objects in one group-by-leaf batch."""

    @abc.abstractmethod
    def apply(self, operations: Iterable[Tuple]) -> "BatchResult":
        """Execute a mixed legacy-tuple operation stream with batched updates.

        Deprecated compatibility adapter over :meth:`execute_many`: tuples
        are parsed through :meth:`repro.api.operations.Operation.from_any`
        and deletes keep the legacy skip-missing semantics.
        """

    @abc.abstractmethod
    def parse_updates(self, updates: Iterable[Tuple[int, Point]]) -> List:
        """Overlay-validate an ``(oid, new_position)`` stream into batch ops.

        Raises ``KeyError`` on an unknown oid before anything executes —
        this is the validation front door of both :meth:`update_many` and
        :meth:`~repro.concurrency.engine.ConcurrentSession.update_many`.
        Implementations may pre-commit facade position state for the parsed
        members (the single index does; the sharded index defers to
        execution so migrations still see current positions).
        """

    # ------------------------------------------------------------------
    # Statistics and integrity
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def reset_statistics(self) -> None:
        """Zero the I/O counters and outcome counters."""

    @abc.abstractmethod
    def io_snapshot(self) -> IOStatistics:
        """A copy of the current (aggregated) I/O counters."""

    @abc.abstractmethod
    def validate(self, check_min_fill: bool = False) -> dict:
        """Run the full structural validation; returns statistics."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable one-line summary of the index state."""

    # ------------------------------------------------------------------
    # Engine SPI — lock-scope prediction
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def lock_requests_for(
        self, kind: str, payload: Tuple
    ) -> List[Tuple[Hashable, "LockMode"]]:
        """Predict the granule lock set of one normalised engine operation.

        ``kind``/``payload`` follow the engine's normal form: ``("update",
        (oid, new))``, ``("insert", (oid, location))``, ``("delete",
        (oid,))``, ``("query", (window,))``.  Recomputed on every dispatch
        attempt, so predictions track the live index.
        """

    @abc.abstractmethod
    def prepare_concurrent_batch(
        self, engine, updates: Iterable
    ) -> "PreparedBatch":
        """Turn an update batch into schedulable virtual operations.

        Returns a :class:`~repro.concurrency.engine.PreparedBatch` whose
        operations the engine hands to the scheduler and whose ``finalize``
        callback computes the batch's I/O delta once the schedule drains.
        """

    def maintenance_operations(self, engine) -> List:
        """Background work to interleave with a live engine schedule.

        The online engine polls this hook between operation draws and hands
        whatever it returns to the scheduler ahead of the next client
        operation, under the ordinary all-or-nothing granule locking.  The
        default facade has no background work; a sharded index with an
        online rebalancer attached returns its conflict-scheduled
        rebalance migrations here (see
        :meth:`repro.shard.index.ShardedIndex.maintenance_operations`).
        """
        return []

    # ------------------------------------------------------------------
    # Engine SPI — per-client physical-I/O attribution
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def set_active_client(self, client: Optional[Hashable]) -> None:
        """Attribute subsequent physical transfers to *client* (``None`` stops)."""

    @abc.abstractmethod
    def total_physical_io(self) -> int:
        """Aggregated physical I/O count (reads + writes + charged probes)."""

    @abc.abstractmethod
    def reset_client_io(self) -> None:
        """Drop per-client attribution (start of an engine run)."""

    @abc.abstractmethod
    def client_io_table(self) -> Dict[Hashable, "ClientIOCounters"]:
        """Aggregated per-client physical I/O attribution."""

    # ------------------------------------------------------------------
    # Concurrent execution (shared implementation)
    # ------------------------------------------------------------------
    def engine(
        self,
        num_clients: Optional[int] = None,
        time_per_io: Optional[float] = None,
        cpu_time_per_op: Optional[float] = None,
    ) -> "ConcurrentSession":
        """Open a multi-client session over the online operation engine.

        Virtual clients execute operations concurrently under DGL granule
        locking on a deterministic logical clock: each operation predicts
        its lock scope through :meth:`lock_requests_for`, acquires the locks
        all-or-nothing, blocks on conflict, and runs for real when its locks
        are granted.  Works identically for single and sharded indexes; a
        sharded index namespaces granules per shard, so operations on
        different shards never conflict.

        Parameters left unset fall back to the index's
        :attr:`engine_defaults` (installed by the declarative builder's
        ``engine`` spec section), then to the global defaults
        (50 clients, 0.01 per I/O, 0.001 per op).
        """
        from repro.concurrency.engine import (  # local: engine imports nothing from core
            ConcurrentSession,
            OnlineOperationEngine,
        )

        defaults = self.engine_defaults
        if num_clients is None:
            num_clients = int(defaults.get("num_clients", 50))
        if time_per_io is None:
            time_per_io = float(defaults.get("time_per_io", 0.01))
        if cpu_time_per_op is None:
            cpu_time_per_op = float(defaults.get("cpu_time_per_op", 0.001))
        return ConcurrentSession(
            OnlineOperationEngine(
                self,
                num_clients=num_clients,
                time_per_io=time_per_io,
                cpu_time_per_op=cpu_time_per_op,
            )
        )
