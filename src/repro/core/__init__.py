"""High-level public API.

:class:`~repro.core.index.MovingObjectIndex` is the facade a downstream user
interacts with: it wires together the simulated disk, the buffer pool, the
R-tree, the secondary object-ID index, the summary structure and the chosen
update strategy, and exposes ``insert`` / ``update`` / ``delete`` /
``range_query`` / ``knn`` plus I/O statistics.

:class:`~repro.core.config.IndexConfig` captures every knob — page size,
buffer percentage, split algorithm, update strategy, and the paper's tuning
parameters (ε, D, ℓ) — so an index configuration can be described, logged and
reproduced as a single value.
"""

from repro.core.config import IndexConfig
from repro.core.index import MovingObjectIndex
from repro.core.persistence import load_index, save_index
from repro.core.protocol import SpatialIndexFacade

__all__ = [
    "IndexConfig",
    "MovingObjectIndex",
    "SpatialIndexFacade",
    "save_index",
    "load_index",
]
