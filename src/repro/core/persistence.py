"""Saving and restoring an index (single or sharded).

A monitoring service restarts; its index should not have to be rebuilt from a
full scan of the object table.  This module provides a simple checkpoint
format for both facade implementations: every R-tree node is written through
the binary codec of :mod:`repro.storage.serialization`, along with the index
configuration and the object-position table.  On load the R-tree pages are
restored onto a fresh simulated disk and the secondary hash index and
summary structure are re-bootstrapped from the tree (they are derived
structures, exactly as the paper treats them).

A :class:`~repro.shard.index.ShardedIndex` checkpoints as one page-image
section per shard plus the partitioner spec; its object directory is derived
and is rebuilt from the restored shards.  :func:`save_index` and
:func:`load_index` dispatch on the index kind, so persistence is part of the
facade surface both implementations share.

The checkpoint is a single JSON document with base64-encoded page images —
deliberately boring and dependency-free; the interesting part is that a
restored index passes full structural validation and answers queries
identically to the original, which the test suite checks (including after a
concurrent engine run over a sharded index).
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Union

# Module import (not name import): repro.api.builder reaches back into
# repro.core while initialising, so its names are resolved at call time.
import repro.api.builder as api_builder
from repro.api.errors import CheckpointError
from repro.core.index import MovingObjectIndex
from repro.geometry import Point
from repro.storage.serialization import NodeCodec

# Version 2: checkpoints use the lossless columnar page codec (binary64
# coordinates) instead of the paper's 4-byte sizing-model format, so a
# save/load round trip reproduces every coordinate bit for bit.
FORMAT_VERSION = 2


def _index_document(index: MovingObjectIndex) -> Dict:
    """The checkpoint document body of one single-machine index."""
    index.buffer.flush()
    codec = NodeCodec(node_layout=index.tree.node_layout)
    pages = {}
    for node, _parent in index.tree.iter_nodes():
        image = codec.encode(node)
        pages[str(node.page_id)] = base64.b64encode(image).decode("ascii")

    return {
        # The embedded configuration IS the declarative builder spec's
        # ``config`` section (repro.api.builder) — one codec for both.
        "config": api_builder.config_to_spec(index.config),
        # The live strategy: ``config.strategy`` is the *initial* choice,
        # ``set_strategy`` may have moved the index since.  Restore re-enters
        # the live strategy so the round trip preserves the running index.
        "active_strategy": index.active_strategy,
        "tree": {
            "root_page_id": index.tree.root_page_id,
            "height": index.tree.height,
            "size": index.tree.size,
        },
        "pages": pages,
        "positions": {str(oid): [p.x, p.y] for oid, p in index._positions.items()},
    }


def _restore_index(document: Dict) -> MovingObjectIndex:
    """Rebuild one single-machine index from its checkpoint document body."""
    config = api_builder.config_from_spec(document["config"])

    index = MovingObjectIndex(config)

    # Throw away the empty root the constructor made and restore the pages.
    index.buffer.clear()
    empty_root = index.tree.peek_node(index.tree.root_page_id)
    index.tree._free_node(empty_root)

    tree_meta = document["tree"]
    codec = NodeCodec(node_layout=index.tree.node_layout)
    restored_pages = {}
    for page_text, image_text in document["pages"].items():
        page_id = int(page_text)
        image = base64.b64decode(image_text.encode("ascii"))
        node = codec.decode(page_id, image)
        restored_pages[page_id] = node

    # Allocate page ids on the fresh disk until every checkpointed id exists,
    # then write the node images into place — in whatever representation the
    # tree's page store holds (node objects or binary page images).
    disk = index.disk
    needed = set(restored_pages)
    allocated = set()
    while needed - allocated:
        allocated.add(disk.allocate_page())
    for page_id in sorted(allocated - needed):
        disk.deallocate_page(page_id)
    for page_id, node in restored_pages.items():
        disk.write_page(page_id, index.tree.encode_page_payload(node))

    index.tree.root_page_id = tree_meta["root_page_id"]
    index.tree.height = tree_meta["height"]
    index.tree.size = tree_meta["size"]
    index.tree.observers.root_changed(index.tree.root_page_id, index.tree.height)

    # Rebuild the derived structures from the restored tree.
    index.hash_index._leaf_of.clear()
    for leaf in index.tree.leaf_nodes():
        for entry in leaf.entries:
            index.hash_index._leaf_of[entry.child] = leaf.page_id
    if index.summary is not None:
        index.summary.rebuild_from_tree()

    # Object positions are rebuilt from the restored leaf entries — the
    # authoritative, self-consistent source (and since format version 2 the
    # page codec is binary64, so this is lossless).  The position table in
    # the document is kept for human inspection and for objects that might
    # not be point-shaped.
    index._positions = {}
    for leaf in index.tree.leaf_nodes():
        for entry in leaf.entries:
            index._positions[entry.child] = entry.rect.center()
    for oid_text, (x, y) in document["positions"].items():
        index._positions.setdefault(int(oid_text), Point(x, y))

    # Re-enter the strategy that was live at checkpoint time (a plain
    # construction starts on ``config.strategy``).  The restored pages carry
    # whatever parent pointers were installed, so an LBU re-entry's sweep
    # finds them correct; the buffer/statistics reset below keeps the
    # transition out of any measured phase.
    active = document.get("active_strategy")
    if active is not None and active != index.active_strategy:
        index.set_strategy(active)

    index.configure_buffer()
    index.reset_statistics()
    return index


def _atomic_write_text(path: Path, text: str) -> None:
    """Crash-atomic file replacement: temp file in the target directory,
    fsync, then ``os.replace`` — a killed write never destroys the previous
    checkpoint, and a reader only ever sees a complete document."""
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_index(index, path: Union[str, Path]) -> None:
    """Write a checkpoint of *index* (single or sharded) to *path*.

    The write is crash-atomic (temp file + fsync + ``os.replace``).  When
    the index has a durability manager attached and *path* is the manager's
    own ``checkpoint.json``, the manager's spec section is embedded in the
    document and the write-ahead logs are rotated afterwards: the new
    checkpoint subsumes them.  Saving anywhere else is a plain export — a
    point-in-time snapshot that carries no ``durability`` section (loading
    it must not replay, or attach a second writer to, logs the live index
    still owns) and leaves the logs untouched.
    """
    from repro.shard.index import ShardedIndex  # local: avoids an import cycle

    if isinstance(index, ShardedIndex):
        document = {
            "format_version": FORMAT_VERSION,
            "kind": "sharded",
            "partitioner": index.partitioner.to_spec(),
            # Under the process backend the workers hold the authoritative
            # trees; shard_documents() checkpoints them in place (the local
            # mirror shards would be stale).
            "shards": index.shard_documents(),
        }
        if index.rebalancer is not None:
            # Builder spec section plus the runtime counters, so a restored
            # index resumes the same policy with its rebalance history.
            document["rebalance"] = index.rebalancer.state_to_spec()
        if index.adaptive is not None:
            # Same shape: policy spec plus the switch counter.  The live
            # per-shard strategies travel inside each shard document's
            # ``active_strategy`` field, not here.
            document["adaptive"] = index.adaptive.state_to_spec()
        if index.parallel_spec is not None:
            # Builder spec section: the restored index re-attaches the same
            # execution backend.
            document["parallel"] = dict(index.parallel_spec)
    else:
        document = {"format_version": FORMAT_VERSION, **_index_document(index)}
    if index.engine_defaults:
        # Builder spec section: restored indexes keep their session defaults,
        # so spec -> index -> checkpoint -> load round-trips to the same spec.
        document["engine"] = dict(index.engine_defaults)
    target = Path(path)
    manager = getattr(index, "durability", None)
    is_durable_checkpoint = (
        manager is not None
        and target.resolve() == manager.checkpoint_path.resolve()
    )
    if is_durable_checkpoint:
        # Builder spec section: loading this checkpoint replays the WAL
        # tail from the manager's directory and re-attaches the manager.
        # A save to any *other* path is a plain export and deliberately
        # omits the section — loading an export must not replay the live
        # index's logs, nor attach a second writer (with its own LSN
        # counter) to a directory the live manager is still appending to.
        document["durability"] = manager.to_spec()
    try:
        _atomic_write_text(target, json.dumps(document))
    except OSError as error:
        raise CheckpointError(
            f"failed to write checkpoint {target}: {error}"
        ) from error
    if is_durable_checkpoint:
        # The durable checkpoint just landed: every logged record is now in
        # the checkpoint, so the logs restart empty (the LSN keeps counting).
        manager.rotate()


def load_index(path: Union[str, Path]):
    """Restore an index from a checkpoint file.

    Returns a :class:`MovingObjectIndex` or a
    :class:`~repro.shard.index.ShardedIndex`, depending on what was saved;
    both come back with derived structures (hash indexes, summaries, the
    shard directory) rebuilt and statistics reset.

    A checkpoint carrying a ``durability`` section replays the write-ahead
    log tail from that directory on top of the restored state (truncating
    at the first torn frame — see :mod:`repro.durability.recovery`) and
    re-attaches the durability manager, so the returned index keeps
    logging where the crashed process stopped.  Unsupported format versions
    and truncated/garbled documents raise
    :class:`~repro.api.errors.CheckpointError` (a ``ValueError``).
    """
    source = Path(path)
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"checkpoint {source} is not valid JSON (torn write?): {error}"
        ) from error
    if document.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {document.get('format_version')!r}"
        )

    durability_spec = document.get("durability")
    if document.get("kind") == "sharded":
        from repro.shard.index import ShardedIndex
        from repro.shard.partitioner import partitioner_from_spec

        partitioner = partitioner_from_spec(document["partitioner"])
        shards = [_restore_index(shard) for shard in document["shards"]]
        index = ShardedIndex.from_restored_shards(partitioner, shards)
        index.configure_buffer()  # facade contract: aggregate buffer split
        if document.get("rebalance"):
            from repro.shard.rebalance import ShardRebalancer

            index.attach_rebalancer(
                ShardRebalancer.from_spec(document["rebalance"], index.num_shards)
            )
        if document.get("adaptive"):
            from repro.shard.adaptive import AdaptiveStrategyController

            index.attach_adaptive(
                AdaptiveStrategyController.from_spec(
                    document["adaptive"], index.num_shards
                )
            )
        if durability_spec:
            # Replay before the parallel backend attaches: replay writes
            # directly into the in-process shard facades, which must still
            # be authoritative at that point.
            _replay_and_attach(index, durability_spec)
        if document.get("parallel"):
            index.set_parallel(**document["parallel"])
    else:
        index = _restore_index(document)
        if durability_spec:
            _replay_and_attach(index, durability_spec)
    if document.get("engine"):
        index.engine_defaults = dict(document["engine"])
    return index


def _replay_and_attach(index, spec: Dict) -> None:
    """Replay the WAL tail described by *spec* and re-attach its manager."""
    from repro.durability.commit import DurabilityManager
    from repro.durability.recovery import replay_into

    manager = DurabilityManager.from_spec(spec)
    report = replay_into(index, manager.directory)
    if report.records:
        # Replay is maintenance, not workload: re-split the buffer against
        # the (possibly grown) database and zero the counters again.
        index.configure_buffer()
        index.reset_statistics()
    index.attach_durability(manager)
