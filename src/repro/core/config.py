"""Configuration of a :class:`~repro.core.index.MovingObjectIndex`."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.update.params import TuningParameters


@dataclass(frozen=True)
class IndexConfig:
    """Everything needed to build an index instance.

    Parameters mirror the paper's experimental setup (Table 1 and Section 5):

    * ``page_size`` — bytes per disk page (paper: 1024);
    * ``buffer_percent`` — buffer pool size as a percentage of the database
      size (paper default: 1 %);
    * ``strategy`` — update strategy: ``"TD"``, ``"NAIVE"``, ``"LBU"`` or
      ``"GBU"``;
    * ``split`` — node split algorithm: ``"quadratic"`` (default),
      ``"linear"`` or ``"rstar"``;
    * ``params`` — the ε / D / ℓ tuning parameters of the bottom-up
      strategies;
    * ``reinsert_on_underflow`` — Guttman condense-and-reinsert on deletes
      (the paper's "R-tree with re-insertions");
    * ``use_summary_for_queries`` — let GBU answer window queries through the
      summary structure (Section 3.2); exposed for ablations;
    * ``charge_hash_io`` — charge one disk read per secondary-index probe
      (Section 4.2's accounting); exposed for ablations;
    * ``node_layout`` — physical in-memory node representation: ``"object"``
      (one :class:`Entry` per slot, the default) or ``"packed"`` (flat
      columnar coordinate/id buffers swept by the batch kernels).  Purely a
      CPU-side choice: answers and I/O counts are identical;
    * ``page_store`` — what a simulated disk page holds: ``"object"`` (the
      node object itself, the default the paper figures are calibrated
      against) or ``"binary"`` (a fixed-format binary image encoded and
      decoded on every page access).  The logical/physical access mapping is
      1:1 either way.
    """

    page_size: int = 1024
    buffer_percent: float = 1.0
    strategy: str = "GBU"
    split: str = "quadratic"
    params: TuningParameters = field(default_factory=TuningParameters.paper_defaults)
    reinsert_on_underflow: bool = True
    use_summary_for_queries: bool = True
    charge_hash_io: bool = True
    bulk_load_fill: float = 0.66
    min_fill_factor: float = 0.4
    node_layout: str = "object"
    page_store: str = "object"

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.buffer_percent < 0:
            raise ValueError("buffer_percent must be non-negative")
        if not 0.0 < self.bulk_load_fill <= 1.0:
            raise ValueError("bulk_load_fill must be in (0, 1]")
        strategy = self.strategy.upper()
        if strategy not in {"TD", "NAIVE", "LBU", "GBU"}:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        object.__setattr__(self, "strategy", strategy)
        if self.split not in {"quadratic", "linear", "rstar"}:
            raise ValueError(f"unknown split algorithm {self.split!r}")
        if self.node_layout not in {"object", "packed"}:
            raise ValueError(f"unknown node layout {self.node_layout!r}")
        if self.page_store not in {"object", "binary"}:
            raise ValueError(f"unknown page store {self.page_store!r}")

    def with_overrides(self, **changes) -> "IndexConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **changes)

    @property
    def needs_parent_pointers(self) -> bool:
        """Whether the configured strategy stores parent pointers in leaves."""
        return self.strategy == "LBU"

    def describe(self) -> str:
        """One-line human-readable description used in benchmark reports."""
        bits = [
            f"strategy={self.strategy}",
            f"page={self.page_size}B",
            f"buffer={self.buffer_percent:g}%",
            f"split={self.split}",
            f"eps={self.params.epsilon:g}",
            f"D={self.params.distance_threshold:g}",
            f"L={'max' if self.params.level_threshold is None else self.params.level_threshold}",
        ]
        if self.node_layout != "object":
            bits.append(f"layout={self.node_layout}")
        if self.page_store != "object":
            bits.append(f"pages={self.page_store}")
        return " ".join(bits)
