"""The MovingObjectIndex facade.

A :class:`MovingObjectIndex` is the complete system the paper evaluates: an
R-tree on a paged, buffered disk; a secondary object-ID hash index; the
main-memory summary structure (when the configured strategy uses it); and one
of the update strategies (TD, NAIVE, LBU, GBU).

Typical usage::

    from repro.core import IndexConfig, MovingObjectIndex
    from repro.geometry import Point, Rect

    index = MovingObjectIndex(IndexConfig(strategy="GBU"))
    index.load([(oid, Point(x, y)) for oid, (x, y) in enumerate(positions)])

    index.update(42, Point(0.30, 0.41))          # object 42 moved
    hits = index.range_query(Rect(0.2, 0.2, 0.4, 0.5))
    print(index.stats.as_dict())                  # disk I/O so far

The facade tracks each object's current position so callers only supply the
new position on update (the strategies internally need the old one to apply
the distance-threshold optimisation and to fall back to top-down deletion).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import IndexConfig
from repro.geometry import Point, Rect
from repro.rtree.bulk import bulk_load_str
from repro.rtree.split import make_split_strategy
from repro.rtree.tree import RTree
from repro.rtree.validation import validate_tree
from repro.secondary import ObjectHashIndex
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout
from repro.summary import SummaryStructure
from repro.update import UpdateOutcome, make_strategy
from repro.update.base import UpdateStrategy


class MovingObjectIndex:
    """A complete moving-object index with a configurable update strategy."""

    def __init__(self, config: Optional[IndexConfig] = None) -> None:
        self.config = config if config is not None else IndexConfig()
        self.stats = IOStatistics()
        self.layout = PageLayout(
            page_size=self.config.page_size,
            min_fill_factor=self.config.min_fill_factor,
        )
        self.disk = DiskManager(page_size=self.config.page_size, stats=self.stats)
        # The buffer is sized after loading (it depends on the database size);
        # start unbuffered so that nothing is cached before the measured phase.
        self.buffer = BufferPool(self.disk, capacity=0, stats=self.stats)
        self.tree = RTree(
            self.buffer,
            layout=self.layout,
            split_strategy=make_split_strategy(self.config.split),
            store_parent_pointers=self.config.needs_parent_pointers,
            reinsert_on_underflow=self.config.reinsert_on_underflow,
        )
        self.hash_index = ObjectHashIndex.build_from_tree(
            self.tree, stats=self.stats, charge_io=self.config.charge_hash_io
        )
        self.summary: Optional[SummaryStructure] = None
        if self.config.strategy == "GBU":
            self.summary = SummaryStructure.build_from_tree(self.tree)
        self.strategy: UpdateStrategy = make_strategy(
            self.config.strategy,
            self.tree,
            params=self.config.params,
            stats=self.stats,
            hash_index=self.hash_index,
            summary=self.summary,
            use_summary_for_queries=self.config.use_summary_for_queries,
        )
        self._positions: Dict[int, Point] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, objects: Iterable[Tuple[int, Point]], bulk: bool = True) -> None:
        """Load the initial set of objects.

        With ``bulk=True`` (default) the initial tree is STR-packed, the
        buffer pool is sized to ``buffer_percent`` of the resulting database,
        and the I/O counters are reset — loading is index construction, not
        part of any measured phase.  With ``bulk=False`` objects are inserted
        one by one through the normal top-down path.
        """
        objects = list(objects)
        if bulk:
            if self.tree.size != 0:
                raise ValueError("bulk loading requires an empty index")
            bulk_load_str(self.tree, objects, fill_factor=self.config.bulk_load_fill)
        else:
            for oid, location in objects:
                self.tree.insert(oid, location)
        for oid, location in objects:
            self._positions[oid] = location
        self.configure_buffer()
        self.reset_statistics()

    def configure_buffer(self, percent: Optional[float] = None) -> None:
        """(Re)size the buffer pool as a percentage of the current database size."""
        percent = self.config.buffer_percent if percent is None else percent
        database_pages = len(self.disk)
        self.buffer.clear()
        self.buffer.capacity = 0
        resized = BufferPool.for_percentage(
            self.disk, percent, database_pages, stats=self.stats
        )
        self.buffer.capacity = resized.capacity

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    def insert(self, oid: int, location: Point) -> None:
        """Insert a new object."""
        if oid in self._positions:
            raise ValueError(f"object {oid} already exists; use update()")
        self.strategy.insert(oid, location)
        self._positions[oid] = location

    def update(self, oid: int, new_location: Point) -> UpdateOutcome:
        """Move an existing object to *new_location* using the configured strategy."""
        old_location = self._positions.get(oid)
        if old_location is None:
            raise KeyError(f"object {oid} is not in the index")
        outcome = self.strategy.update(oid, old_location, new_location)
        self._positions[oid] = new_location
        return outcome

    def delete(self, oid: int) -> bool:
        """Remove an object from the index."""
        location = self._positions.pop(oid, None)
        if location is None:
            return False
        return self.strategy.delete(oid, location)

    def range_query(self, window: Rect) -> List[int]:
        """Object ids whose positions fall inside *window*."""
        return self.strategy.range_query(window)

    def knn(self, point: Point, k: int) -> List[Tuple[float, int]]:
        """The *k* objects nearest to *point* as ``(distance, oid)`` pairs."""
        return self.tree.knn(point, k)

    def position_of(self, oid: int) -> Optional[Point]:
        """Last recorded position of *oid* (``None`` if absent)."""
        return self._positions.get(oid)

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, oid: int) -> bool:
        return oid in self._positions

    # ------------------------------------------------------------------
    # Statistics and integrity
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Zero the I/O counters and the strategy's outcome counters."""
        self.stats.reset()
        self.strategy.reset_counters()

    def io_snapshot(self) -> IOStatistics:
        """A copy of the current I/O counters."""
        return self.stats.snapshot()

    def validate(self, check_min_fill: bool = False) -> dict:
        """Run the full structural validation; returns tree statistics."""
        report = validate_tree(
            self.tree, check_min_fill=check_min_fill, expected_size=len(self._positions)
        )
        hash_errors = self.hash_index.consistency_errors(self.tree)
        if hash_errors:
            raise AssertionError("; ".join(hash_errors))
        if self.summary is not None:
            summary_errors = self.summary.consistency_errors()
            if summary_errors:
                raise AssertionError("; ".join(summary_errors))
        return report

    def describe(self) -> str:
        """Human-readable one-line summary of the index state."""
        counts = self.tree.node_count()
        return (
            f"{self.config.describe()} | objects={len(self._positions)} "
            f"height={self.tree.height} leaves={counts['leaf']} internals={counts['internal']}"
        )
