"""The MovingObjectIndex facade.

A :class:`MovingObjectIndex` is the complete system the paper evaluates: an
R-tree on a paged, buffered disk; a secondary object-ID hash index; the
main-memory summary structure (when the configured strategy uses it); and one
of the update strategies (TD, NAIVE, LBU, GBU).

Typical usage (the typed operation API, v2)::

    import repro
    from repro.api import KNN, RangeQuery, Update
    from repro.geometry import Point, Rect

    index = repro.open_index({"config": {"strategy": "GBU"}})
    index.load([(oid, Point(x, y)) for oid, (x, y) in enumerate(positions)])

    index.execute(Update(42, Point(0.30, 0.41)))  # object 42 moved
    hits = index.execute(RangeQuery(Rect(0.2, 0.2, 0.4, 0.5))).cursor()
    print(hits.fetch(10))                         # streaming result cursor
    print(index.stats.as_dict())                  # disk I/O so far

High-rate ingestion should prefer the batch entry points, which group
pending updates by leaf page and execute each group with one leaf
read/write (see :mod:`repro.update.batch`)::

    result = index.update_many([(42, Point(0.31, 0.40)), (7, Point(0.8, 0.1))])
    report = index.execute_many([
        Update(42, Point(0.32, 0.40)),
        RangeQuery(Rect(0.2, 0.2, 0.4, 0.5)),
    ])
    print(report.describe())                      # per-batch I/O snapshot

Multi-client workloads run through the online concurrent operation engine
(:meth:`MovingObjectIndex.engine`): virtual clients acquire DGL granule
locks predicted by the strategy's ``lock_scope()`` hook and execute against
the index on a deterministic logical clock::

    session = index.engine(num_clients=50)
    session.submit(0, Update(42, Point(0.33, 0.40)))
    print(session.run().throughput)

The direct methods (``update`` / ``range_query`` / ...) remain first-class;
the legacy tuple stream surface (``apply``) survives as a thin deprecated
adapter over the typed model.

The facade tracks each object's current position so callers only supply the
new position on update (the strategies internally need the old one to apply
the distance-threshold optimisation and to fall back to top-down deletion).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.api.errors import DuplicateObjectError, UnknownObjectError
from repro.api.results import QueryCursor
from repro.concurrency.dgl import DGLProtocol
from repro.concurrency.engine import (
    GroupOperation,
    PreparedBatch,
    ReplayOperation,
)
from repro.concurrency.locks import LockMode
from repro.core.config import IndexConfig
from repro.core.protocol import SpatialIndexFacade
from repro.durability.commit import SINGLE_SHARD
from repro.durability.wal import (
    LogRecord,
    delete_record,
    insert_record,
    set_strategy_record,
    update_record,
)
from repro.geometry import Point, Rect
from repro.storage.buffer import ClientIOCounters
from repro.rtree.bulk import bulk_load_str
from repro.rtree.split import make_split_strategy
from repro.rtree.tree import RTree
from repro.rtree.validation import validate_tree
from repro.secondary import ObjectHashIndex
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout
from repro.storage.serialization import NodeCodec
from repro.summary import SummaryStructure
from repro.update import UpdateOutcome, make_strategy
from repro.update.factory import strategy_names, strategy_requires_parent_pointers
from repro.update.base import BatchUpdate, UpdateStrategy
from repro.update.batch import (
    BatchExecutor,
    BatchResult,
    DeleteOp,
    InsertOp,
    Operation,
    parse_operation_stream,
)


class MovingObjectIndex(SpatialIndexFacade):
    """A complete moving-object index with a configurable update strategy."""

    def __init__(self, config: Optional[IndexConfig] = None) -> None:
        self.config = config if config is not None else IndexConfig()
        self.stats = IOStatistics()
        self.layout = PageLayout(
            page_size=self.config.page_size,
            min_fill_factor=self.config.min_fill_factor,
        )
        self.disk = DiskManager(page_size=self.config.page_size, stats=self.stats)
        # The buffer is sized after loading (it depends on the database size);
        # start unbuffered so that nothing is cached before the measured phase.
        self.buffer = BufferPool(self.disk, capacity=0, stats=self.stats)
        page_codec = (
            NodeCodec(node_layout=self.config.node_layout)
            if self.config.page_store == "binary"
            else None
        )
        self.tree = RTree(
            self.buffer,
            layout=self.layout,
            split_strategy=make_split_strategy(self.config.split),
            store_parent_pointers=self.config.needs_parent_pointers,
            reinsert_on_underflow=self.config.reinsert_on_underflow,
            node_layout=self.config.node_layout,
            page_codec=page_codec,
        )
        self.hash_index = ObjectHashIndex.build_from_tree(
            self.tree, stats=self.stats, charge_io=self.config.charge_hash_io
        )
        self.summary: Optional[SummaryStructure] = None
        if self.config.strategy == "GBU":
            self.summary = SummaryStructure.build_from_tree(self.tree)
        self.strategy: UpdateStrategy = make_strategy(
            self.config.strategy,
            self.tree,
            params=self.config.params,
            stats=self.stats,
            hash_index=self.hash_index,
            summary=self.summary,
            use_summary_for_queries=self.config.use_summary_for_queries,
        )
        self.strategy.install()  # idempotent: construction already wired the state
        self.batch = BatchExecutor(
            self.tree,
            self.strategy,
            self.hash_index,
            buffer=self.buffer,
            stats=self.stats,
        )
        #: The strategy currently live on this index.  ``config.strategy``
        #: stays the *initial* strategy; :meth:`set_strategy` moves this.
        self.active_strategy: str = self.config.strategy
        self._positions: Dict[int, Point] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, objects: Iterable[Tuple[int, Point]], bulk: bool = True) -> None:
        """Load the initial set of objects.

        With ``bulk=True`` (default) the initial tree is STR-packed, the
        buffer pool is sized to ``buffer_percent`` of the resulting database,
        and the I/O counters are reset — loading is index construction, not
        part of any measured phase.  With ``bulk=False`` objects are inserted
        one by one through the normal top-down path.
        """
        objects = list(objects)
        if bulk:
            if self.tree.size != 0:
                raise ValueError("bulk loading requires an empty index")
            bulk_load_str(self.tree, objects, fill_factor=self.config.bulk_load_fill)
        else:
            for oid, location in objects:
                self.tree.insert(oid, location)
        for oid, location in objects:
            self._positions[oid] = location
        self.configure_buffer()
        self.reset_statistics()
        if self.durability is not None:
            # Bulk construction is not representable as a cheap log tail;
            # checkpointing here (which rotates the logs) makes the loaded
            # state the recovery baseline.
            self.checkpoint()

    def configure_buffer(self, percent: Optional[float] = None) -> None:
        """(Re)size the buffer pool as a percentage of the current database size."""
        percent = self.config.buffer_percent if percent is None else percent
        self.buffer.clear()
        self.buffer.capacity = BufferPool.capacity_for_percentage(
            percent, len(self.disk)
        )

    # ------------------------------------------------------------------
    # Strategy lifecycle (hot swap)
    # ------------------------------------------------------------------
    def set_strategy(self, name: str) -> str:
        """Switch the live index to update strategy *name* without a rebuild.

        The transition is in place: the old strategy's auxiliary state is
        released through its ``uninstall()`` hook (GBU detaches the summary
        observer, LBU stops parent-pointer maintenance) and the new
        strategy's is installed (LBU backfills leaf parent pointers in one
        tree sweep — those leaf writes are the switch's I/O cost; GBU builds
        a fresh summary from the live tree, uncharged like any bootstrap).
        The tree keeps its construction-time leaf capacity throughout — the
        paper's one-slot parent-pointer charge models trees *built* for LBU.

        ``config.strategy`` remains the initial strategy; the live choice is
        :attr:`active_strategy`, which checkpoints round-trip.  Switching to
        the already-active strategy is a no-op.  When a durability manager
        is attached the switch is logged as its own commit unit, so recovery
        replays the log tail into the strategy that was live.
        """
        key = name.upper()
        if key not in strategy_names():
            raise ValueError(
                f"unknown strategy {name!r}; expected one of {strategy_names()}"
            )
        if key == self.active_strategy:
            return key
        self.strategy.uninstall()
        self.summary = None
        if strategy_requires_parent_pointers(key):
            # The LBU constructor validates the flag, so it is raised before
            # the strategy exists; install() then backfills the pointers.
            self.tree.store_parent_pointers = True
        self.strategy = make_strategy(
            key,
            self.tree,
            params=self.config.params,
            stats=self.stats,
            hash_index=self.hash_index,
            use_summary_for_queries=self.config.use_summary_for_queries,
        )
        self.strategy.install()
        self.summary = getattr(self.strategy, "summary", None)
        self.batch.strategy = self.strategy
        self.active_strategy = key
        if self.durability is not None:
            self.durability.log_unit(
                {SINGLE_SHARD: (set_strategy_record(key),)}, barrier=True
            )
        return key

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    def insert(self, oid: int, location: Point) -> None:
        """Insert a new object (:class:`DuplicateObjectError` when it exists)."""
        if oid in self._positions:
            raise DuplicateObjectError(oid)
        # Apply first, log on success: a strategy that raises must leave the
        # WAL silent, or recovery would replay a mutation the live index
        # never performed (redo replay is idempotent, so apply-then-log
        # costs nothing; a crash in the gap loses an op that was never
        # acknowledged durable).
        self.strategy.insert(oid, location)
        self._positions[oid] = location
        if self.durability is not None:
            self.durability.log_record(SINGLE_SHARD, insert_record(oid, location))

    def update(self, oid: int, new_location: Point) -> UpdateOutcome:
        """Move an existing object to *new_location* using the configured strategy.

        Raises :class:`~repro.api.errors.UnknownObjectError` (a ``KeyError``)
        when the object is not indexed.
        """
        old_location = self._positions.get(oid)
        if old_location is None:
            raise UnknownObjectError(oid)
        outcome = self.strategy.update(oid, old_location, new_location)
        self._positions[oid] = new_location
        if self.durability is not None:
            self.durability.log_record(SINGLE_SHARD, update_record(oid, new_location))
        return outcome

    def delete(self, oid: int, strict: bool = True) -> bool:
        """Remove an object from the index.

        Deleting an absent object raises
        :class:`~repro.api.errors.UnknownObjectError` — the same contract as
        :meth:`update` — unless ``strict=False``, which restores the legacy
        silent ``False`` return (the behaviour the tuple adapter and the
        online engine keep).
        """
        location = self._positions.get(oid)
        if location is None:
            if strict:
                raise UnknownObjectError(oid)
            return False
        removed = self.strategy.delete(oid, location)
        del self._positions[oid]
        if self.durability is not None:
            self.durability.log_record(SINGLE_SHARD, delete_record(oid))
        return removed

    def range_query(self, window: Rect) -> List[int]:
        """Object ids whose positions fall inside *window*."""
        return self.strategy.range_query(window)

    def stream_query(self, window: Rect) -> QueryCursor:
        """Streaming counterpart of :meth:`range_query` (same answer, same order)."""
        return QueryCursor(self.strategy.iter_range_query(window))

    def stream_knn(self, point: Point, k: int) -> QueryCursor:
        """Streaming counterpart of :meth:`knn`: pairs surface best-first."""
        return QueryCursor(self.tree.iter_knn(point, k))

    # ------------------------------------------------------------------
    # Batch operations (group-by-leaf execution, repro.update.batch)
    # ------------------------------------------------------------------
    def update_many(
        self, updates: Iterable[Tuple[int, Point]]
    ) -> BatchResult:
        """Move many existing objects in one batch.

        Pending moves are grouped by their current leaf page and each group
        is executed with a single leaf read/write, which is substantially
        cheaper than one :meth:`update` call per object whenever objects
        share leaves (see ``benchmarks/bench_batch_throughput.py``).  The
        final index contents and all query answers are identical to applying
        the updates one by one, and the returned
        :class:`~repro.update.batch.BatchResult` carries a per-batch
        :class:`IOStatistics` snapshot.
        """
        parsed = self.parse_updates(updates)
        result = self.batch.execute(parsed)
        self._log_batch_ops(parsed)
        return result

    def apply(self, operations: Iterable[Tuple]) -> BatchResult:
        """Execute a mixed operation stream with batched updates.

        Deprecated tuple adapter over the typed
        :meth:`~repro.core.protocol.SpatialIndexFacade.execute_many`: each
        operation is a tuple — ``("update", oid, new_location)``,
        ``("insert", oid, location)``, ``("delete", oid)``, ``("range_query",
        window)`` (``"query"`` is an alias) or ``("knn", point, k)`` — or a
        typed :class:`~repro.api.operations.Operation`.  Runs of consecutive
        updates are batched by leaf; inserts, deletes and queries are
        barriers that flush pending updates first, so the stream observes
        exactly the sequential semantics.  Query answers are collected in
        order in ``result.queries``; deletes keep the legacy skip-missing
        behaviour.
        """
        return self._execute_operation_stream(operations, strict_deletes=False)

    def _execute_operation_stream(
        self, operations: Iterable, strict_deletes: bool
    ) -> BatchResult:
        """Validate a typed/tuple stream against the overlay and run the batch."""
        parsed = self._parse_operations(operations, strict_deletes=strict_deletes)
        result = self.batch.execute(parsed)
        self._log_batch_ops(parsed)
        return result

    def _log_batch_ops(self, ops: Sequence) -> None:
        """Log one executed batch as a single group-commit frame.

        The batch executor applies its operations through the strategy
        directly (never back through the facade's per-op methods), so the
        whole stream logs here exactly once — queries carry no records.
        Called *after* the batch has been applied (apply first, log on
        success): an executor that raises mid-stream leaves the WAL silent
        rather than durably recording mutations that never happened —
        recovery then restores the pre-batch state, and the caller already
        knows the batch failed.
        """
        if self.durability is None:
            return
        records: List[LogRecord] = []
        for op in ops:
            if isinstance(op, BatchUpdate):
                records.append(update_record(op.oid, op.new_location))
            elif isinstance(op, InsertOp):
                records.append(insert_record(op.oid, op.location))
            elif isinstance(op, DeleteOp):
                records.append(delete_record(op.oid))
        if records:
            self.durability.log_unit({SINGLE_SHARD: records}, barrier=True)

    def parse_updates(
        self, updates: Iterable[Tuple[int, Point]]
    ) -> List[BatchUpdate]:
        """Overlay-validate an ``(oid, new_position)`` stream into batch ops.

        Raises ``KeyError`` on an unknown oid before anything executes; on
        success the facade's position map is pre-committed to the stream's
        final positions (every parsed op eventually executes, and batch
        planning re-assigns the same values idempotently).
        """
        # Parse against an overlay and commit only when the whole stream is
        # valid, so a bad operation mid-stream (unknown oid, duplicate
        # insert) leaves the position map consistent with the tree.
        moved: Dict[int, Point] = {}
        ops: List[BatchUpdate] = []
        for oid, new_location in updates:
            old_location = moved.get(oid, self._positions.get(oid))
            if old_location is None:
                raise UnknownObjectError(oid)
            ops.append(BatchUpdate(oid, old_location, new_location))
            moved[oid] = new_location
        self._positions.update(moved)
        return ops

    def _parse_operations(
        self, operations: Iterable, strict_deletes: bool = False
    ) -> List[Operation]:
        # Same overlay discipline as parse_updates: ``None`` marks a pending
        # delete, and nothing touches self._positions until parsing succeeds.
        parsed, overlay = parse_operation_stream(
            operations, self._positions.get, strict_deletes=strict_deletes
        )
        for oid, location in overlay.items():
            if location is None:
                self._positions.pop(oid, None)
            else:
                self._positions[oid] = location
        return parsed

    def knn(self, point: Point, k: int) -> List[Tuple[float, int]]:
        """The *k* objects nearest to *point* as ``(distance, oid)`` pairs."""
        return self.tree.knn(point, k)

    # ------------------------------------------------------------------
    # Engine SPI (repro.core.protocol; sessions open via engine())
    # ------------------------------------------------------------------
    def lock_requests_for(
        self, kind: str, payload: Tuple
    ) -> List[Tuple[Hashable, LockMode]]:
        """Predict one engine operation's DGL granule lock set.

        Scopes come from the strategy's prediction hooks: a top-down update
        locks every leaf its descents may visit, the bottom-up strategies
        lock the object's leaf plus shift candidates and ancestor intents.
        Recomputed on every dispatch attempt against the live tree.
        """
        strategy = self.strategy
        if kind == "update":
            oid, new_location = payload
            old_location = self.position_of(oid)
            if old_location is None:
                requests = strategy.insert_lock_scope(new_location)
            else:
                requests = strategy.lock_scope(oid, old_location, new_location)
        elif kind == "insert":
            _oid, location = payload
            requests = strategy.insert_lock_scope(location)
        elif kind == "delete":
            (oid,) = payload
            location = self.position_of(oid)
            if location is None:
                return []  # nothing to delete, nothing to lock
            requests = strategy.delete_lock_scope(oid, location)
        elif kind == "query":
            (window,) = payload
            requests = strategy.query_lock_scope(window)
        elif kind == "knn":
            # A kNN's reach depends on the data, so the prediction is
            # conservative: the scope of a window query over the whole
            # covered space (every leaf a best-first descent might read).
            point, _k = payload
            root_mbr = self.tree.root_mbr()
            window = root_mbr if root_mbr is not None else Rect.from_point(point)
            requests = strategy.query_lock_scope(window)
        else:
            raise ValueError(f"unknown engine operation kind {kind!r}")
        return DGLProtocol.as_pairs(requests)

    def prepare_concurrent_batch(self, engine, updates: Iterable) -> PreparedBatch:
        """Plan one update batch as schedulable virtual operations.

        The batch executor plans the group-by-leaf buckets (coalescing
        repeated updates of one object exactly as the serial path does);
        each bucket becomes one :class:`GroupOperation`, unindexed members
        become :class:`ReplayOperation`\\ s.  The facade's position map is
        pre-committed to the batch's final positions: every planned member
        eventually executes, and the coalesced ``new_location`` is its final
        position (``ConcurrentSession.update_many`` already did this via
        ``parse_updates``; re-assigning the same final values is idempotent).
        """
        updates = list(updates)
        plan = self.batch.plan(updates)
        for bucket in plan.buckets.values():
            for request in bucket:
                self._positions[request.oid] = request.new_location
        for request in plan.unindexed:
            self._positions[request.oid] = request.new_location
        result = BatchResult(updates=plan.requested, coalesced=plan.coalesced)
        operations: List = [
            ReplayOperation(engine, self.batch, request, result)
            for request in plan.unindexed
        ]
        operations.extend(
            GroupOperation(engine, self.batch, leaf_page, bucket, result)
            for leaf_page, bucket in plan.buckets.items()
        )
        before = self.batch.stats.snapshot()

        def finalize() -> None:
            result.io = self.batch.stats.snapshot().delta_since(before)
            # Apply first, log on success: finalize runs once the scheduler
            # has drained every operation, so a batch the engine abandoned
            # mid-schedule is never durably recorded as having happened.
            self._log_batch_ops(updates)

        return PreparedBatch(operations=operations, result=result, finalize=finalize)

    def set_active_client(self, client: Optional[Hashable]) -> None:
        """Attribute subsequent physical transfers to *client*."""
        self.buffer.set_active_client(client)

    def total_physical_io(self) -> int:
        """Physical reads + writes + charged hash-index probes so far."""
        return self.stats.total_physical_io

    def reset_client_io(self) -> None:
        """Drop per-client attribution (start of an engine run)."""
        self.buffer.reset_client_io()

    def client_io_table(self) -> Dict[Hashable, ClientIOCounters]:
        """Per-client physical I/O attributed by the buffer pool."""
        return self.buffer.client_io_table()

    def position_of(self, oid: int) -> Optional[Point]:
        """Last recorded position of *oid* (``None`` if absent)."""
        return self._positions.get(oid)

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, oid: int) -> bool:
        return oid in self._positions

    # ------------------------------------------------------------------
    # Statistics and integrity
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Zero the I/O counters and the strategy's outcome counters."""
        self.stats.reset()
        self.strategy.reset_counters()

    def io_snapshot(self) -> IOStatistics:
        """A copy of the current I/O counters."""
        return self.stats.snapshot()

    def refresh_summary(self) -> None:
        """Bulk-rebuild the summary structure from the live tree (GBU only).

        The observer protocol keeps the summary incrementally consistent, so
        this is a recovery/bulk-load hook, not part of normal operation.
        """
        if self.summary is not None:
            self.summary.rebuild_from_tree()

    def validate(self, check_min_fill: bool = False) -> dict:
        """Run the full structural validation; returns tree statistics."""
        report = validate_tree(
            self.tree, check_min_fill=check_min_fill, expected_size=len(self._positions)
        )
        hash_errors = self.hash_index.consistency_errors(self.tree)
        if hash_errors:
            raise AssertionError("; ".join(hash_errors))
        if self.summary is not None:
            summary_errors = self.summary.consistency_errors()
            if summary_errors:
                raise AssertionError("; ".join(summary_errors))
        return report

    def describe(self) -> str:
        """Human-readable one-line summary of the index state."""
        counts = self.tree.node_count()
        return (
            f"{self.config.describe()} | objects={len(self._positions)} "
            f"height={self.tree.height} leaves={counts['leaf']} internals={counts['internal']}"
        )
