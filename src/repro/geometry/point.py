"""Two-dimensional points.

The paper indexes moving objects whose positions are 2-D points in the unit
square.  :class:`Point` is the value object used for object locations, query
corners, and movement vectors.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple, Type


class Point:
    """An immutable point in the plane.

    Parameters
    ----------
    x, y:
        Coordinates.  The workload generators keep coordinates inside the
        unit square ``[0, 1] x [0, 1]`` as in the paper, but :class:`Point`
        itself places no restriction on the range.
    """

    __slots__ = ("x", "y")

    x: float
    y: float

    def __init__(self, x: float, y: float) -> None:
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))

    # -- immutability -----------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    def __reduce__(self) -> Tuple[Type["Point"], Tuple[float, float]]:
        # The default slot-state pickle protocol restores attributes through
        # __setattr__, which the immutability guard rejects; reconstruct
        # through the constructor instead.
        return (Point, (self.x, self.y))

    # -- basic protocol ---------------------------------------------------
    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        return f"Point({self.x:.6g}, {self.y:.6g})"

    # -- geometry ---------------------------------------------------------
    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between this point and *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """Manhattan (L1) distance between this point and *other*."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point displaced by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def clamped(self, lo: float = 0.0, hi: float = 1.0) -> "Point":
        """Return a copy with both coordinates clamped to ``[lo, hi]``.

        The GSTD-style workload generator uses this to keep moving objects
        inside the unit data space, mirroring the paper's setup where the
        data space is normalised to the unit square.
        """
        return Point(min(max(self.x, lo), hi), min(max(self.y, lo), hi))

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)
