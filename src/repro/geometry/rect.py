"""Axis-aligned rectangles (MBRs).

Every bounding box in the R-tree — leaf entry extents, node MBRs, the entries
of the main-memory direct access table, and query windows — is a
:class:`Rect`.  The class provides the geometric predicates the paper's
algorithms rely on:

* containment / overlap tests (`contains_point`, `contains_rect`,
  `intersects`),
* enlargement metrics used by Guttman's ChooseLeaf (`enlargement_to_include`),
* the union operations used by AdjustTree (`union`, :func:`union_all`),
* the *directional* extension used by GBU's ``iExtendMBR`` (Algorithm 4):
  :meth:`Rect.extended_towards`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple, Type

from repro.geometry.point import Point


class Rect:
    """An immutable axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Degenerate rectangles (zero width and/or height) are allowed; a point is
    stored in a leaf entry as a degenerate rectangle, matching how the paper
    treats moving-object positions.
    """

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __init__(self, xmin: float, ymin: float, xmax: float, ymax: float) -> None:
        if xmin > xmax or ymin > ymax:
            raise ValueError(
                f"invalid rectangle: ({xmin}, {ymin}, {xmax}, {ymax}) "
                "requires xmin <= xmax and ymin <= ymax"
            )
        object.__setattr__(self, "xmin", float(xmin))
        object.__setattr__(self, "ymin", float(ymin))
        object.__setattr__(self, "xmax", float(xmax))
        object.__setattr__(self, "ymax", float(ymax))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rect is immutable")

    def __reduce__(self) -> Tuple[Type["Rect"], Tuple[float, float, float, float]]:
        # The default slot-state pickle protocol restores attributes through
        # __setattr__, which the immutability guard rejects; reconstruct
        # through the (validated) constructor instead.
        return (Rect, (self.xmin, self.ymin, self.xmax, self.ymax))

    # -- constructors ------------------------------------------------------
    @classmethod
    def _raw(cls, xmin: float, ymin: float, xmax: float, ymax: float) -> "Rect":
        """Unchecked fast-path constructor for internal hot paths.

        Skips the ``xmin <= xmax`` validation and the ``float()`` coercions;
        callers must guarantee the coordinates are well-ordered floats (true
        for every union/extension of already-valid rectangles).  The batch
        kernels in :mod:`repro.geometry.kernels` and the union paths below
        use it to avoid paying the validated constructor per rectangle.
        """
        rect = cls.__new__(cls)
        object.__setattr__(rect, "xmin", xmin)
        object.__setattr__(rect, "ymin", ymin)
        object.__setattr__(rect, "xmax", xmax)
        object.__setattr__(rect, "ymax", ymax)
        return rect

    @classmethod
    def from_point(cls, point: Point) -> "Rect":
        """Degenerate rectangle covering a single point."""
        x, y = point.x, point.y
        return cls._raw(x, y, x, y)

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Smallest rectangle covering the two points *a* and *b*."""
        return cls(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Rectangle of the given extent centred on *center*."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @classmethod
    def unit(cls) -> "Rect":
        """The unit square ``[0, 1] x [0, 1]`` — the paper's data space."""
        return cls(0.0, 0.0, 1.0, 1.0)

    # -- protocol ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (
            self.xmin == other.xmin
            and self.ymin == other.ymin
            and self.xmax == other.xmax
            and self.ymax == other.ymax
        )

    def __hash__(self) -> int:
        return hash((self.xmin, self.ymin, self.xmax, self.ymax))

    def __iter__(self) -> Iterator[float]:
        yield self.xmin
        yield self.ymin
        yield self.xmax
        yield self.ymax

    def __repr__(self) -> str:
        return (
            f"Rect({self.xmin:.6g}, {self.ymin:.6g}, "
            f"{self.xmax:.6g}, {self.ymax:.6g})"
        )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """Return ``(xmin, ymin, xmax, ymax)``."""
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    # -- measures ----------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    def area(self) -> float:
        """Area of the rectangle (zero for degenerate rectangles)."""
        return self.width * self.height

    def margin(self) -> float:
        """Half-perimeter; the R*-split heuristic minimises this."""
        return self.width + self.height

    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    # -- predicates ----------------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        """``True`` if *point* lies inside or on the boundary."""
        return (
            self.xmin <= point.x <= self.xmax
            and self.ymin <= point.y <= self.ymax
        )

    def contains_rect(self, other: "Rect") -> bool:
        """``True`` if *other* lies entirely inside this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        """``True`` if this rectangle overlaps *other* (boundary touch counts)."""
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    # -- combination ---------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both this rectangle and *other*."""
        return Rect._raw(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def union_point(self, point: Point) -> "Rect":
        """Smallest rectangle covering this rectangle and *point*."""
        return Rect._raw(
            min(self.xmin, point.x),
            min(self.ymin, point.y),
            max(self.xmax, point.x),
            max(self.ymax, point.y),
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Overlap region of this rectangle and *other*, or ``None``."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return Rect._raw(xmin, ymin, xmax, ymax)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the overlap region (zero if disjoint)."""
        overlap = self.intersection(other)
        return 0.0 if overlap is None else overlap.area()

    # -- metrics used by the R-tree algorithms ---------------------------------
    def enlargement_to_include(self, other: "Rect") -> float:
        """Area increase needed to cover *other* (Guttman's ChooseLeaf metric)."""
        return self.union(other).area() - self.area()

    def enlargement_to_include_point(self, point: Point) -> float:
        """Area increase needed to cover *point*."""
        return self.union_point(point).area() - self.area()

    def min_distance_to_point(self, point: Point) -> float:
        """Minimum Euclidean distance from *point* to this rectangle.

        Used by the kNN extension; zero when the point is inside.
        """
        dx = max(self.xmin - point.x, 0.0, point.x - self.xmax)
        dy = max(self.ymin - point.y, 0.0, point.y - self.ymax)
        return (dx * dx + dy * dy) ** 0.5

    # -- GBU directional extension (Algorithm 4) -------------------------------
    def extended_towards(
        self,
        target: Point,
        epsilon: float,
        bound: Optional["Rect"] = None,
    ) -> "Rect":
        """Directionally extend the rectangle towards *target* (``iExtendMBR``).

        This is the paper's Algorithm 4.  The rectangle is enlarged only on
        the sides the target lies beyond (e.g. if the object moved north-east
        only the top and right edges move), each side moves at most *epsilon*,
        and — when *bound* (the parent MBR) is given — never beyond the bound.

        The returned rectangle is *not* guaranteed to contain *target*: the
        caller (GBU, Algorithm 2) checks containment and falls back to
        sibling shifting or ascent when the extension was insufficient.
        """
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        xmin, ymin, xmax, ymax = self.xmin, self.ymin, self.xmax, self.ymax

        if target.x > xmax:
            new_xmax = min(xmax + epsilon, target.x)
            if bound is not None:
                new_xmax = min(new_xmax, bound.xmax)
            xmax = max(xmax, new_xmax)
        elif target.x < xmin:
            new_xmin = max(xmin - epsilon, target.x)
            if bound is not None:
                new_xmin = max(new_xmin, bound.xmin)
            xmin = min(xmin, new_xmin)

        if target.y > ymax:
            new_ymax = min(ymax + epsilon, target.y)
            if bound is not None:
                new_ymax = min(new_ymax, bound.ymax)
            ymax = max(ymax, new_ymax)
        elif target.y < ymin:
            new_ymin = max(ymin - epsilon, target.y)
            if bound is not None:
                new_ymin = max(new_ymin, bound.ymin)
            ymin = min(ymin, new_ymin)

        return Rect(xmin, ymin, xmax, ymax)

    def expanded(self, epsilon: float, bound: Optional["Rect"] = None) -> "Rect":
        """Enlarge the rectangle by *epsilon* **in all directions**.

        This is the LBU/Kwon-style enlargement (Section 3.1): the leaf MBR
        grows equally on every side, optionally clipped to the parent MBR
        *bound* so the R-tree invariant (child MBR inside parent MBR) holds.
        """
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        xmin = self.xmin - epsilon
        ymin = self.ymin - epsilon
        xmax = self.xmax + epsilon
        ymax = self.ymax + epsilon
        if bound is not None:
            xmin = max(xmin, bound.xmin)
            ymin = max(ymin, bound.ymin)
            xmax = min(xmax, bound.xmax)
            ymax = min(ymax, bound.ymax)
            # The original rectangle is assumed to be inside the bound; keep
            # the result well-formed even if it was not.
            xmin = min(xmin, self.xmin)
            ymin = min(ymin, self.ymin)
            xmax = max(xmax, self.xmax)
            ymax = max(ymax, self.ymax)
        return Rect(xmin, ymin, xmax, ymax)


def union_all(rects: Iterable[Rect]) -> Rect:
    """Smallest rectangle covering every rectangle in *rects*.

    Raises ``ValueError`` when *rects* is empty — an R-tree node never has an
    empty MBR, so an empty union indicates a logic error in the caller.
    """
    iterator = iter(rects)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("union_all() requires at least one rectangle") from None
    xmin, ymin, xmax, ymax = first.xmin, first.ymin, first.xmax, first.ymax
    for rect in iterator:
        if rect.xmin < xmin:
            xmin = rect.xmin
        if rect.ymin < ymin:
            ymin = rect.ymin
        if rect.xmax > xmax:
            xmax = rect.xmax
        if rect.ymax > ymax:
            ymax = rect.ymax
    return Rect._raw(xmin, ymin, xmax, ymax)


def rects_from_sequence(values: Sequence[float]) -> Rect:
    """Build a :class:`Rect` from a flat ``(xmin, ymin, xmax, ymax)`` sequence."""
    if len(values) != 4:
        raise ValueError("expected exactly four coordinates")
    return Rect(values[0], values[1], values[2], values[3])
