"""Geometric primitives for the R-tree reproduction.

This package provides the two-dimensional primitives the paper's algorithms
operate on:

* :class:`~repro.geometry.point.Point` — a 2-D point (object location).
* :class:`~repro.geometry.rect.Rect` — an axis-aligned rectangle used as a
  Minimum Bounding Rectangle (MBR) throughout the R-tree.

Both classes are immutable value objects so they can be shared freely between
tree nodes, the main-memory summary structure, and workload generators.
"""

from repro.geometry import kernels
from repro.geometry.point import Point
from repro.geometry.rect import Rect, union_all

__all__ = ["Point", "Rect", "kernels", "union_all"]
