"""Batch geometric kernels over packed coordinate buffers.

The packed node layout (:class:`repro.rtree.node.PackedNode`) stores the MBRs
of a node's entries as one flat coordinate buffer::

    [xmin0, ymin0, xmax0, ymax0, xmin1, ymin1, xmax1, ymax1, ...]

(typically an ``array('d')``).  The kernels in this module sweep such a buffer
in a single pass, replacing per-entry ``Rect`` method calls on the R-tree hot
paths — ChooseLeaf enlargement scans, range-query intersection filters,
best-first kNN distance batches, and the bottom-up strategies'
shift-candidate scans.

Every kernel is defined to agree **exactly** (bit-for-bit, not approximately)
with the scalar :class:`~repro.geometry.rect.Rect` predicates: the arithmetic
mirrors the scalar formulas operation for operation, so a packed-layout tree
produces byte-identical answers to an object-layout tree.  The property suite
in ``tests/test_geometry_kernels.py`` enforces this contract.

Two interchangeable backends are provided:

* ``"python"`` — pure-Python loops; always available, the default.
* ``"numpy"`` — vectorised implementations used when numpy is installed and
  the backend is selected via :func:`set_backend` or the
  ``REPRO_KERNEL_BACKEND`` environment variable.  IEEE-754 elementwise
  semantics make the results identical to the Python backend.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect

#: Flat coordinate buffer ``[xmin, ymin, xmax, ymax] * n`` (``array('d')``,
#: list, or any float sequence).
CoordBuffer = Sequence[float]

Bounds = Tuple[float, float, float, float]

_PYTHON = "python"
_NUMPY = "numpy"

_backend: str = _PYTHON
_np: Optional[Any] = None


def _load_numpy() -> Optional[Any]:
    """Import numpy once; ``None`` when unavailable (pure-Python fallback)."""
    global _np
    if _np is None:
        try:
            import numpy
        except ImportError:  # pragma: no cover - depends on environment
            return None
        _np = numpy
    return _np


def available_backends() -> List[str]:
    """Backends usable in this environment (``"python"`` is always present)."""
    backends = [_PYTHON]
    if _load_numpy() is not None:
        backends.append(_NUMPY)
    return backends


def set_backend(name: str) -> str:
    """Select the kernel backend; returns the backend actually in effect.

    Requesting ``"numpy"`` when numpy is not importable falls back to
    ``"python"`` (the pure-Python implementation is mandatory, the fast path
    optional).  Unknown names raise ``ValueError``.
    """
    global _backend
    if name not in (_PYTHON, _NUMPY):
        raise ValueError(f"unknown kernel backend: {name!r}")
    if name == _NUMPY and _load_numpy() is None:
        name = _PYTHON
    _backend = name
    return _backend


def get_backend() -> str:
    """Name of the backend currently in effect."""
    return _backend


def entry_count(coords: CoordBuffer) -> int:
    """Number of rectangles in the buffer."""
    return len(coords) // 4


def _as_ndarray(coords: CoordBuffer) -> Any:
    np = _np
    assert np is not None
    try:
        # Zero-copy view for array('d') / memoryview / bytes-backed buffers.
        return np.frombuffer(coords, dtype=np.float64).reshape(-1, 4)  # type: ignore[arg-type]
    except (TypeError, AttributeError, ValueError):
        return np.asarray(coords, dtype=np.float64).reshape(-1, 4)


# ---------------------------------------------------------------------------
# union_bounds — AdjustTree / Node.mbr()
# ---------------------------------------------------------------------------
def union_bounds(coords: CoordBuffer) -> Bounds:
    """Bounds of the union of every rectangle in the buffer.

    Mirrors :func:`repro.geometry.rect.union_all` (comparison-only min/max,
    so the result is exact).  Raises ``ValueError`` on an empty buffer — an
    R-tree node never has an empty MBR.
    """
    n = len(coords)
    if n == 0:
        raise ValueError("union_bounds() requires at least one rectangle")
    if _backend == _NUMPY:
        rects = _as_ndarray(coords)
        lo = rects[:, :2].min(axis=0)
        hi = rects[:, 2:].max(axis=0)
        return (float(lo[0]), float(lo[1]), float(hi[0]), float(hi[1]))
    it = iter(coords)
    xmin, ymin, xmax, ymax = next(it), next(it), next(it), next(it)
    for exmin, eymin, exmax, eymax in zip(it, it, it, it):
        if exmin < xmin:
            xmin = exmin
        if eymin < ymin:
            ymin = eymin
        if exmax > xmax:
            xmax = exmax
        if eymax > ymax:
            ymax = eymax
    return (xmin, ymin, xmax, ymax)


def union_rect(coords: CoordBuffer) -> Rect:
    """:func:`union_bounds` packaged as a :class:`Rect`."""
    xmin, ymin, xmax, ymax = union_bounds(coords)
    return Rect._raw(xmin, ymin, xmax, ymax)


# ---------------------------------------------------------------------------
# intersects_many — range queries / FindLeaf
# ---------------------------------------------------------------------------
def intersects_many(
    coords: CoordBuffer, xmin: float, ymin: float, xmax: float, ymax: float
) -> List[int]:
    """Indices of rectangles overlapping the window (boundary touch counts).

    Mirrors :meth:`Rect.intersects`.
    """
    if _backend == _NUMPY:
        np = _np
        assert np is not None
        rects = _as_ndarray(coords)
        mask = ~(
            (rects[:, 2] < xmin)
            | (xmax < rects[:, 0])
            | (rects[:, 3] < ymin)
            | (ymax < rects[:, 1])
        )
        return [int(i) for i in np.flatnonzero(mask)]
    hits: List[int] = []
    append = hits.append
    for index in range(0, len(coords), 4):
        if not (
            coords[index + 2] < xmin
            or xmax < coords[index]
            or coords[index + 3] < ymin
            or ymax < coords[index + 1]
        ):
            append(index >> 2)
    return hits


def intersects_ids(
    coords: CoordBuffer,
    ids: Sequence[int],
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
) -> List[int]:
    """``ids[i]`` for every rectangle ``i`` overlapping the window.

    Gather variant of :func:`intersects_many`: one pass over the buffer that
    collects the matching entry ids directly, skipping the intermediate index
    list (node scans always want the ids, not the positions).
    """
    if _backend == _NUMPY:
        np = _np
        assert np is not None
        rects = _as_ndarray(coords)
        mask = ~(
            (rects[:, 2] < xmin)
            | (xmax < rects[:, 0])
            | (rects[:, 3] < ymin)
            | (ymax < rects[:, 1])
        )
        return [int(ids[int(i)]) for i in np.flatnonzero(mask)]
    hits: List[int] = []
    append = hits.append
    for index in range(0, len(coords), 4):
        if not (
            coords[index + 2] < xmin
            or xmax < coords[index]
            or coords[index + 3] < ymin
            or ymax < coords[index + 1]
        ):
            append(ids[index >> 2])
    return hits


# ---------------------------------------------------------------------------
# contained_in_many — piggyback eligibility scans (LBU/GBU)
# ---------------------------------------------------------------------------
def contained_in_many(
    coords: CoordBuffer, xmin: float, ymin: float, xmax: float, ymax: float
) -> List[int]:
    """Indices of rectangles lying entirely inside the window.

    Mirrors :meth:`Rect.contains_rect` with the window as the container.
    """
    if _backend == _NUMPY:
        np = _np
        assert np is not None
        rects = _as_ndarray(coords)
        mask = (
            (xmin <= rects[:, 0])
            & (ymin <= rects[:, 1])
            & (xmax >= rects[:, 2])
            & (ymax >= rects[:, 3])
        )
        return [int(i) for i in np.flatnonzero(mask)]
    hits: List[int] = []
    append = hits.append
    for index in range(0, len(coords), 4):
        if (
            xmin <= coords[index]
            and ymin <= coords[index + 1]
            and xmax >= coords[index + 2]
            and ymax >= coords[index + 3]
        ):
            append(index >> 2)
    return hits


# ---------------------------------------------------------------------------
# contains_point_many — shift-candidate scans (LBU/GBU)
# ---------------------------------------------------------------------------
def contains_point_many(coords: CoordBuffer, x: float, y: float) -> List[int]:
    """Indices of rectangles containing the point (boundary inclusive).

    Mirrors :meth:`Rect.contains_point`.
    """
    if _backend == _NUMPY:
        np = _np
        assert np is not None
        rects = _as_ndarray(coords)
        mask = (
            (rects[:, 0] <= x)
            & (x <= rects[:, 2])
            & (rects[:, 1] <= y)
            & (y <= rects[:, 3])
        )
        return [int(i) for i in np.flatnonzero(mask)]
    hits: List[int] = []
    append = hits.append
    for index in range(0, len(coords), 4):
        if (
            coords[index] <= x <= coords[index + 2]
            and coords[index + 1] <= y <= coords[index + 3]
        ):
            append(index >> 2)
    return hits


def contains_point_ids(
    coords: CoordBuffer, ids: Sequence[int], x: float, y: float
) -> List[int]:
    """``ids[i]`` for every rectangle ``i`` containing the point.

    Gather variant of :func:`contains_point_many` (see :func:`intersects_ids`).
    """
    if _backend == _NUMPY:
        np = _np
        assert np is not None
        rects = _as_ndarray(coords)
        mask = (
            (rects[:, 0] <= x)
            & (x <= rects[:, 2])
            & (rects[:, 1] <= y)
            & (y <= rects[:, 3])
        )
        return [int(ids[int(i)]) for i in np.flatnonzero(mask)]
    hits: List[int] = []
    append = hits.append
    for index in range(0, len(coords), 4):
        if (
            coords[index] <= x <= coords[index + 2]
            and coords[index + 1] <= y <= coords[index + 3]
        ):
            append(ids[index >> 2])
    return hits


# ---------------------------------------------------------------------------
# enlargement_many / argmin_enlargement — Guttman's ChooseLeaf
# ---------------------------------------------------------------------------
def enlargement_many(
    coords: CoordBuffer, xmin: float, ymin: float, xmax: float, ymax: float
) -> List[float]:
    """Area increase each rectangle needs to cover the query rectangle.

    Mirrors :meth:`Rect.enlargement_to_include`:
    ``union(self, other).area() - self.area()`` with the identical operation
    order, so the floats match the scalar path bit for bit.
    """
    if _backend == _NUMPY:
        np = _np
        assert np is not None
        rects = _as_ndarray(coords)
        uw = np.maximum(rects[:, 2], xmax) - np.minimum(rects[:, 0], xmin)
        uh = np.maximum(rects[:, 3], ymax) - np.minimum(rects[:, 1], ymin)
        area = (rects[:, 2] - rects[:, 0]) * (rects[:, 3] - rects[:, 1])
        return [float(v) for v in uw * uh - area]
    out: List[float] = []
    append = out.append
    # One pass of 4-way unpacking beats stride-4 indexing when every
    # coordinate is consumed (unlike the short-circuiting predicate scans).
    it = iter(coords)
    for exmin, eymin, exmax, eymax in zip(it, it, it, it):
        union_w = (exmax if exmax > xmax else xmax) - (exmin if exmin < xmin else xmin)
        union_h = (eymax if eymax > ymax else ymax) - (eymin if eymin < ymin else ymin)
        append(union_w * union_h - (exmax - exmin) * (eymax - eymin))
    return out


def argmin_enlargement(
    coords: CoordBuffer, xmin: float, ymin: float, xmax: float, ymax: float
) -> int:
    """Index of the ChooseLeaf winner: least enlargement, ties by least area.

    First-wins on exact ties, matching the sequential scan in
    ``RTree._choose_subtree``.  Raises ``ValueError`` on an empty buffer.
    """
    n = entry_count(coords)
    if n == 0:
        raise ValueError("argmin_enlargement() requires at least one rectangle")
    if _backend == _NUMPY:
        np = _np
        assert np is not None
        rects = _as_ndarray(coords)
        uw = np.maximum(rects[:, 2], xmax) - np.minimum(rects[:, 0], xmin)
        uh = np.maximum(rects[:, 3], ymax) - np.minimum(rects[:, 1], ymin)
        areas = (rects[:, 2] - rects[:, 0]) * (rects[:, 3] - rects[:, 1])
        enlargements = uw * uh - areas
        candidates = np.flatnonzero(enlargements == enlargements.min())
        # argmin returns the first minimum, preserving first-wins semantics.
        return int(candidates[int(np.argmin(areas[candidates]))])
    best_index = 0
    best_enlargement = float("inf")
    best_area = float("inf")
    index = 0
    it = iter(coords)
    for exmin, eymin, exmax, eymax in zip(it, it, it, it):
        area = (exmax - exmin) * (eymax - eymin)
        union_w = (exmax if exmax > xmax else xmax) - (exmin if exmin < xmin else xmin)
        union_h = (eymax if eymax > ymax else ymax) - (eymin if eymin < ymin else ymin)
        enlargement = union_w * union_h - area
        if enlargement < best_enlargement or (
            enlargement == best_enlargement and area < best_area
        ):
            best_enlargement = enlargement
            best_area = area
            best_index = index
        index += 1
    return best_index


# ---------------------------------------------------------------------------
# min_distance_many — best-first kNN
# ---------------------------------------------------------------------------
def min_distance_many(coords: CoordBuffer, x: float, y: float) -> List[float]:
    """Minimum Euclidean distance from the point to each rectangle.

    Mirrors :meth:`Rect.min_distance_to_point` (``(dx*dx + dy*dy) ** 0.5``
    with clamped axis distances); zero when the point lies inside.
    """
    if _backend == _NUMPY:
        np = _np
        assert np is not None
        rects = _as_ndarray(coords)
        dx = np.maximum(np.maximum(rects[:, 0] - x, 0.0), x - rects[:, 2])
        dy = np.maximum(np.maximum(rects[:, 1] - y, 0.0), y - rects[:, 3])
        # The square root goes through Python's scalar ``** 0.5`` (libm pow),
        # not np.sqrt: the two can disagree in the last ULP, and the contract
        # is bit-exact agreement with Rect.min_distance_to_point.  The
        # clamped differences, squares and sum above are exactly-rounded
        # IEEE ops, so they already match the scalar path bit for bit.
        return [float(v) ** 0.5 for v in dx * dx + dy * dy]
    out: List[float] = []
    append = out.append
    it = iter(coords)
    for exmin, eymin, exmax, eymax in zip(it, it, it, it):
        dx = max(exmin - x, 0.0, x - exmax)
        dy = max(eymin - y, 0.0, y - eymax)
        append((dx * dx + dy * dy) ** 0.5)
    return out


# Honour the environment override once at import; a bad value degrades to the
# pure-Python backend rather than failing module import.
_env_backend = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower()
if _env_backend in (_PYTHON, _NUMPY):
    set_backend(_env_backend)
