"""Dynamic Granular Locking (DGL) protocol layer.

DGL (Chakrabarti & Mehrotra, ICDE 1998) provides phantom-safe concurrent
access to R-trees by locking *granules* instead of latching whole subtrees:
the lockable granules are the leaf-level MBRs plus "external" granules that
cover the parts of the data space not covered by any leaf.  A search locks
every granule overlapping its window in shared mode; an insert or delete
locks the granules that (will) contain the affected entry in exclusive mode.

The paper's Section 3.2.2 observes that bottom-up updates fit the same
protocol: a bottom-up update acquires exclusive locks on the leaf granules it
touches (the object's leaf, possibly a sibling, possibly the parent when an
MBR is adjusted), and a concurrent top-down operation acquiring locks on all
overlapping granules will meet those locks, preserving consistency.  The
entries of the summary structure are protected the same way (the paper
attaches three lock bits to each direct-access-table entry; here the summary
granule shares the lock id of the node it summarises, which is equivalent).

:class:`DGLProtocol` turns a recorded operation — which pages it read and
wrote — into the list of granule lock requests the operation would issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set, Tuple

from repro.concurrency.locks import LockMode, strongest_mode

#: The identifier of the single external granule.  A finer decomposition of
#: the uncovered space is possible, but one external granule is the
#: conservative choice and only penalises operations that insert outside all
#: leaf MBRs — which are exactly the operations the paper expects to be rare
#: and expensive.
EXTERNAL_GRANULE = "external"

#: The coarse whole-tree granule used for intention tagging: operations take
#: IS/IX here on their way down, mirroring DGL's lightweight marking of the
#: path, and it is what makes a hypothetical tree-wide operation (e.g. a
#: rebuild) conflict with everything.
TREE_GRANULE = "tree"


@dataclass(frozen=True)
class GranuleLockRequest:
    """One granule to lock and the mode to lock it in."""

    granule: object
    mode: LockMode


@dataclass
class DGLProtocol:
    """Maps recorded page accesses to DGL granule lock requests.

    Parameters
    ----------
    leaf_pages:
        The set of page ids that are currently leaf pages; only these are
        lockable granules (internal nodes are not locked under DGL — that is
        the point of granular locking).
    lock_internal_as_intention:
        When ``True``, internal pages touched by an operation contribute
        intention locks on the *tree granule* (a single coarse resource).
        This models the lightweight intention tagging DGL performs on its
        way down; it only matters for fairness accounting, not for
        correctness of the simulation, and is enabled by default.
    """

    leaf_pages: Set[int] = field(default_factory=set)
    lock_internal_as_intention: bool = True

    TREE_GRANULE = TREE_GRANULE

    # ------------------------------------------------------------------
    # Granule bookkeeping
    # ------------------------------------------------------------------
    def register_leaf(self, page_id: int) -> None:
        self.leaf_pages.add(page_id)

    def forget_leaf(self, page_id: int) -> None:
        self.leaf_pages.discard(page_id)

    def is_leaf_granule(self, page_id: int) -> bool:
        return page_id in self.leaf_pages

    # ------------------------------------------------------------------
    # Lock-request derivation
    # ------------------------------------------------------------------
    def requests_for_update(
        self,
        pages_read: Iterable[int],
        pages_written: Iterable[int],
    ) -> List[GranuleLockRequest]:
        """Lock requests for an update operation.

        Leaf pages written are locked exclusively; leaf pages only read are
        locked shared (an update reads sibling leaves it decides not to use).
        If the update wrote no existing leaf (it created a brand-new leaf or
        went through the external region) the external granule is locked
        exclusively, which is DGL's phantom protection for inserts into
        uncovered space.
        """
        written = {page for page in pages_written if page in self.leaf_pages}
        read_only = {
            page
            for page in pages_read
            if page in self.leaf_pages and page not in written
        }
        requests = [GranuleLockRequest(page, LockMode.EXCLUSIVE) for page in sorted(written)]
        requests.extend(
            GranuleLockRequest(page, LockMode.SHARED) for page in sorted(read_only)
        )
        if not written:
            requests.append(GranuleLockRequest(EXTERNAL_GRANULE, LockMode.EXCLUSIVE))
        if self.lock_internal_as_intention:
            requests.append(
                GranuleLockRequest(self.TREE_GRANULE, LockMode.INTENTION_EXCLUSIVE)
            )
        return requests

    def requests_for_query(self, pages_read: Iterable[int]) -> List[GranuleLockRequest]:
        """Lock requests for a window query: shared locks on every leaf read."""
        leaves = {page for page in pages_read if page in self.leaf_pages}
        requests = [GranuleLockRequest(page, LockMode.SHARED) for page in sorted(leaves)]
        if self.lock_internal_as_intention:
            requests.append(
                GranuleLockRequest(self.TREE_GRANULE, LockMode.INTENTION_SHARED)
            )
        return requests

    # ------------------------------------------------------------------
    @staticmethod
    def as_pairs(requests: Sequence[GranuleLockRequest]) -> List[Tuple[object, LockMode]]:
        """Convert requests to the ``(resource, mode)`` pairs the lock manager takes."""
        return [(request.granule, request.mode) for request in requests]


def namespace_pairs(
    pairs: Sequence[Tuple[object, "LockMode"]], namespace: object
) -> List[Tuple[object, "LockMode"]]:
    """Qualify every granule with *namespace* (``None`` leaves them untouched).

    A sharded index namespaces each shard's granules with the shard id, so
    page ``17`` of shard 0 and page ``17`` of shard 3 — and likewise the two
    shards' tree and external granules — are distinct lockable resources.
    This is what makes operations on different shards conflict-free under a
    single scheduler, while a migration that names granules from two shards
    still locks both atomically.
    """
    if namespace is None:
        return list(pairs)
    return [((namespace, granule), mode) for granule, mode in pairs]


def merge_requests(requests: Iterable[GranuleLockRequest]) -> List[GranuleLockRequest]:
    """Collapse duplicate granules to a single request in the strongest mode.

    Lock-scope predictions are assembled from several independent clauses
    (the object's leaf, shift candidates, the insert target, ...) that can
    name the same granule more than once; the lock manager would tolerate
    the duplicates, but a canonical merged set keeps scope sizes meaningful
    for contention accounting.  Order of first appearance is preserved, so
    merged scopes are deterministic.
    """
    merged: "dict[object, LockMode]" = {}
    for request in requests:
        held = merged.get(request.granule)
        merged[request.granule] = (
            request.mode if held is None else strongest_mode(held, request.mode)
        )
    return [GranuleLockRequest(granule, mode) for granule, mode in merged.items()]
