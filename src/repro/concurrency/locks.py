"""Multi-granularity lock manager.

A small but complete lock manager supporting the classic multi-granularity
modes (IS, IX, S, X), a standard compatibility matrix, FIFO wait queues and
per-holder bookkeeping.  It is deliberately free of threads: callers (the
DGL protocol layer and the discrete-event operation scheduler) decide *when*
a waiting request is retried, which keeps scheduled runs deterministic.
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque
from typing import Deque, Dict, Hashable, List, Set, Tuple


class LockMode(enum.Enum):
    """Lock modes in increasing order of strength (IS < IX < S < X)."""

    INTENTION_SHARED = "IS"
    INTENTION_EXCLUSIVE = "IX"
    SHARED = "S"
    EXCLUSIVE = "X"


#: Compatibility matrix: ``_COMPATIBLE[(held, requested)]`` is True when a
#: lock held in mode *held* allows another transaction to acquire *requested*.
_COMPATIBLE: Dict[Tuple[LockMode, LockMode], bool] = {}


def _fill_compatibility() -> None:
    IS, IX, S, X = (
        LockMode.INTENTION_SHARED,
        LockMode.INTENTION_EXCLUSIVE,
        LockMode.SHARED,
        LockMode.EXCLUSIVE,
    )
    table = {
        (IS, IS): True, (IS, IX): True, (IS, S): True, (IS, X): False,
        (IX, IS): True, (IX, IX): True, (IX, S): False, (IX, X): False,
        (S, IS): True, (S, IX): False, (S, S): True, (S, X): False,
        (X, IS): False, (X, IX): False, (X, S): False, (X, X): False,
    }
    _COMPATIBLE.update(table)


_fill_compatibility()


def compatible(held: LockMode, requested: LockMode) -> bool:
    """``True`` when *requested* can be granted alongside a lock held in *held*."""
    return _COMPATIBLE[(held, requested)]


class LockManager:
    """Tracks lock grants per resource.

    Resources are arbitrary hashable identifiers (the DGL layer uses granule
    ids).  Owners are arbitrary hashable identifiers (client ids in the
    scheduler).  The manager is re-entrant: an owner holding a resource in
    some mode may upgrade it, and repeated requests for the same or weaker
    mode are no-ops.
    """

    def __init__(self) -> None:
        # resource -> owner -> mode
        self._grants: Dict[Hashable, Dict[Hashable, LockMode]] = defaultdict(dict)
        # resource -> queue of (owner, mode) requests that had to wait
        self._waiters: Dict[Hashable, Deque[Tuple[Hashable, LockMode]]] = defaultdict(deque)
        self.grant_count = 0
        self.wait_count = 0

    # ------------------------------------------------------------------
    def can_grant(self, resource: Hashable, owner: Hashable, mode: LockMode) -> bool:
        """Check whether *owner* could acquire *resource* in *mode* right now."""
        for other_owner, held_mode in self._grants[resource].items():
            if other_owner == owner:
                continue
            if not compatible(held_mode, mode):
                return False
        return True

    def try_acquire(self, resource: Hashable, owner: Hashable, mode: LockMode) -> bool:
        """Acquire if possible; returns ``True`` on success (no queueing)."""
        held = self._grants[resource].get(owner)
        if held is not None and _stronger_or_equal(held, mode):
            return True
        if not self.can_grant(resource, owner, mode):
            return False
        self._grants[resource][owner] = _strongest(held, mode)
        self.grant_count += 1
        return True

    def try_acquire_all(
        self, requests: List[Tuple[Hashable, LockMode]], owner: Hashable
    ) -> bool:
        """Atomically acquire every lock in *requests* or none of them.

        All-or-nothing acquisition is how the scheduler avoids having to
        model deadlock detection: an operation either gets its full lock set
        and runs, or it waits and retries when another operation releases.
        """
        for resource, mode in requests:
            held = self._grants[resource].get(owner)
            if held is not None and _stronger_or_equal(held, mode):
                continue
            if not self.can_grant(resource, owner, mode):
                self.wait_count += 1
                return False
        for resource, mode in requests:
            held = self._grants[resource].get(owner)
            self._grants[resource][owner] = _strongest(held, mode)
            self.grant_count += 1
        return True

    def release_all(self, owner: Hashable) -> None:
        """Release every lock held by *owner*."""
        for resource in list(self._grants):
            grants = self._grants[resource]
            if owner in grants:
                del grants[owner]
            if not grants:
                del self._grants[resource]

    # ------------------------------------------------------------------
    def holders(self, resource: Hashable) -> Dict[Hashable, LockMode]:
        """Current holders of *resource* and their modes (copy)."""
        return dict(self._grants.get(resource, {}))

    def locks_of(self, owner: Hashable) -> Set[Hashable]:
        """Resources currently held by *owner*."""
        return {
            resource for resource, grants in self._grants.items() if owner in grants
        }

    def held_resources(self) -> Set[Hashable]:
        """Every resource with at least one holder."""
        return set(self._grants)


def _stronger_or_equal(held: LockMode, requested: LockMode) -> bool:
    order = {
        LockMode.INTENTION_SHARED: 0,
        LockMode.INTENTION_EXCLUSIVE: 1,
        LockMode.SHARED: 2,
        LockMode.EXCLUSIVE: 3,
    }
    # S and IX are incomparable in general; treating S >= IX would wrongly
    # allow a writer to proceed under a shared lock, so only X dominates S,
    # and only X/IX dominate IX.
    if held == requested:
        return True
    if held == LockMode.EXCLUSIVE:
        return True
    if held == LockMode.SHARED and requested == LockMode.INTENTION_SHARED:
        return True
    if held == LockMode.INTENTION_EXCLUSIVE and requested == LockMode.INTENTION_SHARED:
        return True
    return order[held] >= order[requested] and (held, requested) not in {
        (LockMode.SHARED, LockMode.INTENTION_EXCLUSIVE),
    }


def strongest_mode(held: LockMode, requested: LockMode) -> LockMode:
    """The weakest mode that dominates both arguments (public helper)."""
    return _strongest(held, requested)


def _strongest(held, requested: LockMode) -> LockMode:
    if held is None:
        return requested
    if _stronger_or_equal(held, requested):
        return held
    if _stronger_or_equal(requested, held):
        return requested
    # S + IX (or vice versa) combine to X-equivalent strength; granting X is
    # the conservative upgrade.
    return LockMode.EXCLUSIVE
