"""Online concurrent operation engine.

:class:`OnlineOperationEngine` is the execution layer the ROADMAP's
heavy-traffic north star asks for: virtual clients draw operations from a
live workload stream, each operation *predicts* its DGL granule lock scope
through the owning strategy's ``lock_scope()`` hook, acquires the locks
online through the :class:`~repro.concurrency.locks.LockManager`, executes
for real against the index under a deterministic logical clock, and blocks
and retries on conflict.  Throughput therefore emerges from actual
interleavings — a top-down update that locks every leaf its descent may
visit stalls its neighbours, a bottom-up update that locks one leaf granule
does not — instead of from replaying a fixed single-threaded trace.

The engine is shared by every operation path:

* **single operations / mixed streams** — :meth:`OnlineOperationEngine.run`
  (one shared stream) and :meth:`OnlineOperationEngine.run_streams` (one
  stream per client, see
  :meth:`~repro.workload.generator.WorkloadGenerator.client_streams`);
* **batches** — :meth:`OnlineOperationEngine.run_batch` partitions a batch
  into group-by-leaf buckets via the PR 1 batch executor, derives each
  group's granule lock set from the strategy's ``group_lock_scope()`` hook,
  and schedules non-conflicting groups as concurrent virtual operations
  (conflict-aware batch scheduling);
* **multi-client facades** — :class:`ConcurrentSession`, returned by
  :meth:`repro.core.index.MovingObjectIndex.engine`, queues per-client work
  and reports per-client physical I/O through the buffer pool's client
  accounting.

Everything is deterministic: the scheduler's event order is total, lock
scopes are pure functions of the live tree, and no wall-clock time enters
the model — the same seed always produces the identical makespan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import repro.api.operations as api_ops
from repro.concurrency.dgl import DGLProtocol, namespace_pairs
from repro.concurrency.scheduler import (
    OperationScheduler,
    ScheduleResult,
    VirtualOperation,
)
from repro.geometry import Point, Rect

if TYPE_CHECKING:  # imported lazily to keep the package import-cycle free
    from repro.core.protocol import SpatialIndexFacade
    from repro.storage.buffer import ClientIOCounters
    from repro.update.base import BatchUpdate
    from repro.update.batch import BatchExecutor, BatchResult


class _LiveOperation(VirtualOperation):
    """A typed facade operation scheduled and executed online.

    Carries one :class:`repro.api.operations.Operation`; its engine normal
    form ``(kind, payload)`` — :meth:`Operation.normalise` — is what lock
    prediction dispatches on.  Lock scopes are predicted by the facade
    itself (:meth:`~repro.core.protocol.SpatialIndexFacade.lock_requests_for`)
    and recomputed from the live index on every dispatch attempt; an
    update's *old* position is whatever the index holds at that moment,
    which is exactly the online semantics — a blocked update sees the
    positions its predecessors committed.
    """

    __slots__ = ("engine", "operation", "kind", "payload")

    def __init__(self, engine: "OnlineOperationEngine", operation: "api_ops.Operation"):
        self.engine = engine
        self.operation = operation
        self.kind, self.payload = operation.normalise()

    def lock_requests(self):
        return self.engine.index.lock_requests_for(self.kind, self.payload)

    def execute(self, client: int) -> int:
        index = self.engine.index
        op = self.operation
        if isinstance(op, (api_ops.Update, api_ops.Migrate)):
            if op.oid in index:
                work = lambda: index.update(op.oid, op.new_location)
            else:
                # Online upsert semantics: a stream may update an object a
                # concurrent delete already removed; treat it as (re-)insert.
                work = lambda: index.insert(op.oid, op.new_location)
        elif isinstance(op, api_ops.Insert):
            work = lambda: index.insert(op.oid, op.location)
        elif isinstance(op, api_ops.Delete):
            # Non-strict: deleting an object a concurrent operation already
            # removed is a no-op for the stream, not an error.
            work = lambda: index.delete(op.oid, strict=False)
        elif isinstance(op, api_ops.KNN):
            work = lambda: index.knn(op.point, op.k)
        else:
            window = op.window  # type: ignore[union-attr]
            work = lambda: index.range_query(window)
        return self.engine.measure(client, work)


class GroupOperation(VirtualOperation):
    """One group-by-leaf batch bucket scheduled as a virtual operation.

    Facades construct these in ``prepare_concurrent_batch``: a single index
    hands every group to its one executor with no namespace; a sharded index
    hands each group to the owning shard's executor and namespaces the lock
    granules with the shard id, so group buckets of different shards never
    conflict.
    """

    __slots__ = ("engine", "executor", "leaf_page", "bucket", "result", "namespace")
    kind = "group"

    def __init__(
        self,
        engine,
        executor: "BatchExecutor",
        leaf_page: int,
        bucket,
        result,
        namespace=None,
    ):
        self.engine = engine
        self.executor = executor
        self.leaf_page = leaf_page
        self.bucket = bucket
        self.result = result
        self.namespace = namespace

    def lock_requests(self):
        pairs = DGLProtocol.as_pairs(
            self.executor.strategy.group_lock_scope(self.leaf_page, self.bucket)
        )
        return namespace_pairs(pairs, self.namespace)

    def execute(self, client: int) -> int:
        return self.engine.measure(
            client,
            lambda: self.executor.execute_group(
                self.leaf_page, self.bucket, self.result
            ),
        )


class ReplayOperation(VirtualOperation):
    """A batch member with no indexed leaf, replayed per-operation."""

    __slots__ = ("engine", "executor", "request", "result", "namespace")
    kind = "update"

    def __init__(self, engine, executor: "BatchExecutor", request, result, namespace=None):
        self.engine = engine
        self.executor = executor
        self.request = request
        self.result = result
        self.namespace = namespace

    def lock_requests(self):
        pairs = DGLProtocol.as_pairs(
            self.executor.strategy.lock_scope(
                self.request.oid,
                self.request.old_location,
                self.request.new_location,
            )
        )
        return namespace_pairs(pairs, self.namespace)

    def execute(self, client: int) -> int:
        return self.engine.measure(
            client, lambda: self.executor.replay(self.request, self.result)
        )


@dataclass
class PreparedBatch:
    """A batch turned into schedulable work by a facade.

    ``operations`` are handed to the scheduler as-is; ``finalize`` runs after
    the schedule drains and is where the facade computes the batch's I/O
    delta (a sharded facade merges the deltas of every shard's counters).
    """

    operations: List[VirtualOperation]
    result: "BatchResult"
    finalize: Callable[[], None] = field(default=lambda: None)


@dataclass
class BatchScheduleResult:
    """Conflict-aware batch execution: the schedule plus the batch outcome."""

    schedule: ScheduleResult
    batch: "BatchResult"

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    def describe(self) -> str:
        return (
            f"{self.batch.describe()} | makespan={self.schedule.makespan:.3f} "
            f"clients={self.schedule.num_clients} "
            f"lock_waits={self.schedule.lock_waits}"
        )


class OnlineOperationEngine:
    """Schedules live index operations over N virtual clients under DGL.

    The engine is facade-generic: it drives anything implementing
    :class:`~repro.core.protocol.SpatialIndexFacade` — lock scopes come from
    the facade's ``lock_requests_for`` hook, batches from its
    ``prepare_concurrent_batch`` hook, and per-client physical-I/O
    attribution from its client-accounting hooks.  A sharded facade thereby
    gets true multi-shard parallelism for free: its granules are namespaced
    per shard, so only operations touching the same shard can ever conflict.
    """

    def __init__(
        self,
        index: "SpatialIndexFacade",
        num_clients: int = 50,
        time_per_io: float = 0.01,
        cpu_time_per_op: float = 0.001,
    ) -> None:
        self.index = index
        self.scheduler = OperationScheduler(
            num_clients=num_clients,
            time_per_io=time_per_io,
            cpu_time_per_op=cpu_time_per_op,
        )
        #: Facade maintenance work (e.g. rebalance migrations) pending
        #: dispatch, shared across every client stream of a run so bursts
        #: spread over all clients (see :meth:`_with_maintenance`).  The
        #: queue deliberately survives an aborted run: a rebalance plan
        #: whose boundaries are already installed must eventually complete,
        #: and maintenance operations re-verify every member against the
        #: live index at dispatch, so draining leftovers at the start of
        #: the next run is safe self-healing, not stale replay.
        self._maintenance: Deque[VirtualOperation] = deque()

    @property
    def num_clients(self) -> int:
        return self.scheduler.num_clients

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------
    def run(self, operations: Iterable) -> ScheduleResult:
        """Execute a shared operation stream over the engine's clients.

        The stream's native currency is the typed
        :class:`repro.api.operations.Operation` model; legacy facade tuples
        (``("update", oid, new)``, ...) and the generator's ``("update",
        (oid, old, new))`` / ``("query", window)`` items are accepted
        through the deprecated :meth:`Operation.from_any` adapter.
        """
        self.index.reset_client_io()
        return self.scheduler.run(
            self._with_maintenance(self._live_operations(operations))
        )

    def run_streams(self, streams: Sequence[Iterable]) -> ScheduleResult:
        """Execute one operation stream per virtual client.

        Each stream is interleaved with the facade's maintenance hook, so
        background work a facade generates while the run is live — e.g. the
        sharded rebalancer's migration batches — is scheduled alongside the
        client operations under the same granule locking instead of waiting
        for the session to drain.
        """
        self.index.reset_client_io()
        return self.scheduler.run_streams(
            [
                self._with_maintenance(self._live_operations(stream))
                for stream in streams
            ]
        )

    def run_batch(self, updates: Iterable["BatchUpdate"]) -> BatchScheduleResult:
        """Conflict-aware scheduling of one update batch.

        The facade plans the batch (coalescing repeated updates of one
        object exactly as the serial path does) and hands back virtual
        operations: group-by-leaf buckets whose lock set is the strategy's
        ``group_lock_scope()``, per-operation replays for unindexed members,
        and — on a sharded facade — cross-shard migrations that lock both
        shards.  Operations with disjoint granule sets execute concurrently,
        operations sharing a granule serialise — so the batch's makespan
        reflects its real conflict structure, and is strictly below serial
        execution whenever at least two groups are disjoint.
        """
        prepared = self.index.prepare_concurrent_batch(self, updates)
        self.index.reset_client_io()
        schedule = self.scheduler.run(iter(prepared.operations))
        prepared.finalize()
        return BatchScheduleResult(schedule=schedule, batch=prepared.result)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def measure(self, client: int, work) -> int:
        """Run *work* attributing its physical I/O to *client*; return the count."""
        index = self.index
        before = index.total_physical_io()
        index.set_active_client(client)
        try:
            work()
        finally:
            index.set_active_client(None)
        return index.total_physical_io() - before

    def _live_operations(self, operations: Iterable) -> Iterator[_LiveOperation]:
        for operation in operations:
            yield _LiveOperation(self, api_ops.Operation.from_any(operation))

    def _with_maintenance(
        self, operations: Iterator[VirtualOperation]
    ) -> Iterator[VirtualOperation]:
        """Interleave the facade's maintenance work with a live stream.

        Before each client operation is handed to the scheduler the facade's
        :meth:`~repro.core.protocol.SpatialIndexFacade.maintenance_operations`
        hook is polled and its output lands on one maintenance queue
        **shared by every client stream**; each draw then dispatches at most
        one queued operation ahead of the client's own work.  A burst of
        maintenance (the sharded rebalancer emits one migration per
        displaced object) is thereby spread across all virtual clients and
        executed concurrently, instead of serialising on whichever client
        happened to trigger it.  Streams that drain keep pulling from the
        queue until it empties.  Each injected operation locks its own
        granules all-or-nothing, so maintenance serialises only with the
        client operations it truly conflicts with.
        """
        queue = self._maintenance
        for operation in operations:
            queue.extend(self.index.maintenance_operations(self))
            if queue:
                yield queue.popleft()
            yield operation
        queue.extend(self.index.maintenance_operations(self))
        while queue:
            yield queue.popleft()


class ConcurrentSession:
    """Multi-client facade over the online engine.

    Obtained from :meth:`repro.core.index.MovingObjectIndex.engine`::

        from repro.api import RangeQuery, Update

        session = index.engine(num_clients=50)
        session.submit(0, Update(42, Point(0.3, 0.4)))
        session.submit(1, RangeQuery(Rect(0.2, 0.2, 0.4, 0.5)))
        result = session.run()            # deterministic ScheduleResult
        print(result.throughput, session.client_io())

    Work queued with :meth:`submit` is per-client; :meth:`run` drains every
    queue under the scheduler.  :meth:`run_mixed` and :meth:`update_many`
    are the streaming and batch shortcuts used by the benchmarks.
    """

    def __init__(self, engine: OnlineOperationEngine) -> None:
        self.engine = engine
        self._queues: Dict[int, List["api_ops.OperationLike"]] = {}

    @property
    def index(self) -> "SpatialIndexFacade":
        return self.engine.index

    @property
    def num_clients(self) -> int:
        return self.engine.num_clients

    # ------------------------------------------------------------------
    def submit(
        self, client: int, *operations: "api_ops.OperationLike"
    ) -> "ConcurrentSession":
        """Queue typed operations (or legacy tuples) on *client*'s stream."""
        if not 0 <= client < self.num_clients:
            raise ValueError(
                f"client {client} out of range (0..{self.num_clients - 1})"
            )
        self._queues.setdefault(client, []).extend(operations)
        return self

    def pending(self) -> int:
        """Operations queued and not yet run."""
        return sum(len(queue) for queue in self._queues.values())

    def run(self) -> ScheduleResult:
        """Execute every queued per-client stream; queues are consumed."""
        streams = [
            self._queues.get(client, []) for client in range(self.num_clients)
        ]
        self._queues = {}
        return self.engine.run_streams(streams)

    def run_shared(self, operations: Iterable) -> ScheduleResult:
        """Execute a shared stream (clients draw operations in order)."""
        return self.engine.run(operations)

    def run_mixed(
        self, generator, num_operations: int, update_fraction: float
    ) -> ScheduleResult:
        """Execute a generator's mixed stream dealt over this session's clients."""
        streams = generator.client_streams(
            self.num_clients, num_operations, update_fraction
        )
        return self.engine.run_streams(streams)

    def update_many(
        self, updates: Iterable[Tuple[int, Point]]
    ) -> BatchScheduleResult:
        """Batch counterpart of :meth:`MovingObjectIndex.update_many`.

        The same group-by-leaf execution, but non-conflicting groups run as
        concurrent virtual operations instead of draining serially.
        """
        operations = self.index.parse_updates(updates)
        return self.engine.run_batch(operations)

    def client_io(self) -> Dict[int, "ClientIOCounters"]:
        """Physical I/O attributed to each client during the last run."""
        return self.index.client_io_table()
