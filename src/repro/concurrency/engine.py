"""Online concurrent operation engine.

:class:`OnlineOperationEngine` is the execution layer the ROADMAP's
heavy-traffic north star asks for: virtual clients draw operations from a
live workload stream, each operation *predicts* its DGL granule lock scope
through the owning strategy's ``lock_scope()`` hook, acquires the locks
online through the :class:`~repro.concurrency.locks.LockManager`, executes
for real against the index under a deterministic logical clock, and blocks
and retries on conflict.  Throughput therefore emerges from actual
interleavings — a top-down update that locks every leaf its descent may
visit stalls its neighbours, a bottom-up update that locks one leaf granule
does not — instead of from replaying a fixed single-threaded trace.

The engine is shared by every operation path:

* **single operations / mixed streams** — :meth:`OnlineOperationEngine.run`
  (one shared stream) and :meth:`OnlineOperationEngine.run_streams` (one
  stream per client, see
  :meth:`~repro.workload.generator.WorkloadGenerator.client_streams`);
* **batches** — :meth:`OnlineOperationEngine.run_batch` partitions a batch
  into group-by-leaf buckets via the PR 1 batch executor, derives each
  group's granule lock set from the strategy's ``group_lock_scope()`` hook,
  and schedules non-conflicting groups as concurrent virtual operations
  (conflict-aware batch scheduling);
* **multi-client facades** — :class:`ConcurrentSession`, returned by
  :meth:`repro.core.index.MovingObjectIndex.engine`, queues per-client work
  and reports per-client physical I/O through the buffer pool's client
  accounting.

Everything is deterministic: the scheduler's event order is total, lock
scopes are pure functions of the live tree, and no wall-clock time enters
the model — the same seed always produces the identical makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.concurrency.dgl import DGLProtocol
from repro.concurrency.scheduler import (
    OperationScheduler,
    ScheduleResult,
    VirtualOperation,
)
from repro.geometry import Point, Rect

if TYPE_CHECKING:  # imported lazily to keep the package import-cycle free
    from repro.core.index import MovingObjectIndex
    from repro.storage.buffer import ClientIOCounters
    from repro.update.base import BatchUpdate
    from repro.update.batch import BatchResult


class _LiveOperation(VirtualOperation):
    """A facade operation scheduled and executed online.

    ``payload`` is normalised by the engine: ``("update", oid, new)``,
    ``("insert", oid, location)``, ``("delete", oid)`` or
    ``("query", window)``.  Lock scopes are recomputed from the live index
    on every dispatch attempt; the update's *old* position is whatever the
    index holds at that moment, which is exactly the online semantics — a
    blocked update sees the positions its predecessors committed.
    """

    __slots__ = ("engine", "kind", "payload")

    def __init__(self, engine: "OnlineOperationEngine", kind: str, payload: Tuple):
        self.engine = engine
        self.kind = kind
        self.payload = payload

    def lock_requests(self):
        index = self.engine.index
        strategy = index.strategy
        if self.kind == "update":
            oid, new_location = self.payload
            old_location = index.position_of(oid)
            if old_location is None:
                requests = strategy.insert_lock_scope(new_location)
            else:
                requests = strategy.lock_scope(oid, old_location, new_location)
        elif self.kind == "insert":
            _oid, location = self.payload
            requests = strategy.insert_lock_scope(location)
        elif self.kind == "delete":
            (oid,) = self.payload
            location = index.position_of(oid)
            if location is None:
                return []  # nothing to delete, nothing to lock
            requests = strategy.delete_lock_scope(oid, location)
        else:  # query
            (window,) = self.payload
            requests = strategy.query_lock_scope(window)
        return DGLProtocol.as_pairs(requests)

    def execute(self, client: int) -> int:
        index = self.engine.index
        if self.kind == "update":
            oid, new_location = self.payload
            if oid in index:
                work = lambda: index.update(oid, new_location)
            else:
                work = lambda: index.insert(oid, new_location)
        elif self.kind == "insert":
            oid, location = self.payload
            work = lambda: index.insert(oid, location)
        elif self.kind == "delete":
            (oid,) = self.payload
            work = lambda: index.delete(oid)
        else:
            (window,) = self.payload
            work = lambda: index.range_query(window)
        return self.engine.measure(client, work)


class _GroupOperation(VirtualOperation):
    """One group-by-leaf batch bucket scheduled as a virtual operation."""

    __slots__ = ("engine", "leaf_page", "bucket", "result")
    kind = "group"

    def __init__(self, engine, leaf_page: int, bucket, result):
        self.engine = engine
        self.leaf_page = leaf_page
        self.bucket = bucket
        self.result = result

    def lock_requests(self):
        strategy = self.engine.index.strategy
        return DGLProtocol.as_pairs(
            strategy.group_lock_scope(self.leaf_page, self.bucket)
        )

    def execute(self, client: int) -> int:
        executor = self.engine.index.batch
        return self.engine.measure(
            client,
            lambda: executor.execute_group(self.leaf_page, self.bucket, self.result),
        )


class _ReplayOperation(VirtualOperation):
    """A batch member with no indexed leaf, replayed per-operation."""

    __slots__ = ("engine", "request", "result")
    kind = "update"

    def __init__(self, engine, request, result):
        self.engine = engine
        self.request = request
        self.result = result

    def lock_requests(self):
        strategy = self.engine.index.strategy
        return DGLProtocol.as_pairs(
            strategy.lock_scope(
                self.request.oid,
                self.request.old_location,
                self.request.new_location,
            )
        )

    def execute(self, client: int) -> int:
        executor = self.engine.index.batch
        return self.engine.measure(
            client, lambda: executor.replay(self.request, self.result)
        )


@dataclass
class BatchScheduleResult:
    """Conflict-aware batch execution: the schedule plus the batch outcome."""

    schedule: ScheduleResult
    batch: "BatchResult"

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    def describe(self) -> str:
        return (
            f"{self.batch.describe()} | makespan={self.schedule.makespan:.3f} "
            f"clients={self.schedule.num_clients} "
            f"lock_waits={self.schedule.lock_waits}"
        )


class OnlineOperationEngine:
    """Schedules live index operations over N virtual clients under DGL."""

    def __init__(
        self,
        index: "MovingObjectIndex",
        num_clients: int = 50,
        time_per_io: float = 0.01,
        cpu_time_per_op: float = 0.001,
    ) -> None:
        self.index = index
        self.scheduler = OperationScheduler(
            num_clients=num_clients,
            time_per_io=time_per_io,
            cpu_time_per_op=cpu_time_per_op,
        )

    @property
    def num_clients(self) -> int:
        return self.scheduler.num_clients

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------
    def run(self, operations: Iterable) -> ScheduleResult:
        """Execute a shared operation stream over the engine's clients.

        Accepts both the facade tuples of
        :meth:`~repro.core.index.MovingObjectIndex.apply` — ``("update",
        oid, new)``, ``("insert", oid, location)``, ``("delete", oid)``,
        ``("range_query", window)`` — and the generator's
        ``("update", (oid, old, new))`` / ``("query", window)`` items.
        """
        self.index.buffer.reset_client_io()
        return self.scheduler.run(self._live_operations(operations))

    def run_streams(self, streams: Sequence[Iterable]) -> ScheduleResult:
        """Execute one operation stream per virtual client."""
        self.index.buffer.reset_client_io()
        return self.scheduler.run_streams(
            [self._live_operations(stream) for stream in streams]
        )

    def run_batch(self, updates: Iterable["BatchUpdate"]) -> BatchScheduleResult:
        """Conflict-aware scheduling of one update batch.

        The batch executor plans the group-by-leaf buckets (coalescing
        repeated updates of one object exactly as the serial path does);
        each bucket becomes one virtual operation whose lock set is the
        strategy's ``group_lock_scope()``.  Buckets with disjoint granule
        sets execute concurrently, buckets sharing a granule (a shift target
        sibling, for instance) serialise — so the batch's makespan reflects
        its real conflict structure, and is strictly below serial execution
        whenever at least two groups are disjoint.
        """
        from repro.update.batch import BatchResult  # local: avoids import cycle

        executor = self.index.batch
        plan = executor.plan(updates)
        # Keep the facade's position map in step with what the batch will
        # commit: every planned member eventually executes (group pass or
        # replay), and the coalesced new_location is its final position.
        # ConcurrentSession.update_many already did this via _update_ops;
        # re-assigning the same final values is idempotent.
        for bucket in plan.buckets.values():
            for request in bucket:
                self.index._positions[request.oid] = request.new_location
        for request in plan.unindexed:
            self.index._positions[request.oid] = request.new_location
        result = BatchResult(updates=plan.requested, coalesced=plan.coalesced)
        before = executor.stats.snapshot()
        operations: List[VirtualOperation] = [
            _ReplayOperation(self, request, result) for request in plan.unindexed
        ]
        operations.extend(
            _GroupOperation(self, leaf_page, bucket, result)
            for leaf_page, bucket in plan.buckets.items()
        )
        self.index.buffer.reset_client_io()
        schedule = self.scheduler.run(iter(operations))
        result.io = executor.stats.snapshot().delta_since(before)
        return BatchScheduleResult(schedule=schedule, batch=result)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def measure(self, client: int, work) -> int:
        """Run *work* attributing its physical I/O to *client*; return the count."""
        buffer = self.index.buffer
        stats = self.index.stats
        before = stats.total_physical_io
        buffer.set_active_client(client)
        try:
            work()
        finally:
            buffer.set_active_client(None)
        return stats.total_physical_io - before

    def _live_operations(self, operations: Iterable) -> Iterator[_LiveOperation]:
        for operation in operations:
            yield self._normalise(operation)

    def _normalise(self, operation: Tuple) -> _LiveOperation:
        kind = operation[0]
        if kind == "update":
            if len(operation) == 2:  # generator item: ("update", (oid, old, new))
                oid, _old, new_location = operation[1]
            else:  # facade tuple: ("update", oid, new)
                _, oid, new_location = operation
            return _LiveOperation(self, "update", (oid, new_location))
        if kind == "insert":
            _, oid, location = operation
            return _LiveOperation(self, "insert", (oid, location))
        if kind == "delete":
            _, oid = operation
            return _LiveOperation(self, "delete", (oid,))
        if kind in ("query", "range_query"):
            window = operation[1]
            if not isinstance(window, Rect):
                raise TypeError(f"query operand must be a Rect, got {window!r}")
            return _LiveOperation(self, "query", (window,))
        raise ValueError(f"unknown engine operation kind {kind!r}")


class ConcurrentSession:
    """Multi-client facade over the online engine.

    Obtained from :meth:`repro.core.index.MovingObjectIndex.engine`::

        session = index.engine(num_clients=50)
        session.submit(0, ("update", 42, Point(0.3, 0.4)))
        session.submit(1, ("range_query", Rect(0.2, 0.2, 0.4, 0.5)))
        result = session.run()            # deterministic ScheduleResult
        print(result.throughput, session.client_io())

    Work queued with :meth:`submit` is per-client; :meth:`run` drains every
    queue under the scheduler.  :meth:`run_mixed` and :meth:`update_many`
    are the streaming and batch shortcuts used by the benchmarks.
    """

    def __init__(self, engine: OnlineOperationEngine) -> None:
        self.engine = engine
        self._queues: Dict[int, List[Tuple]] = {}

    @property
    def index(self) -> "MovingObjectIndex":
        return self.engine.index

    @property
    def num_clients(self) -> int:
        return self.engine.num_clients

    # ------------------------------------------------------------------
    def submit(self, client: int, *operations: Tuple) -> "ConcurrentSession":
        """Queue facade operation tuples on *client*'s stream."""
        if not 0 <= client < self.num_clients:
            raise ValueError(
                f"client {client} out of range (0..{self.num_clients - 1})"
            )
        self._queues.setdefault(client, []).extend(operations)
        return self

    def pending(self) -> int:
        """Operations queued and not yet run."""
        return sum(len(queue) for queue in self._queues.values())

    def run(self) -> ScheduleResult:
        """Execute every queued per-client stream; queues are consumed."""
        streams = [
            self._queues.get(client, []) for client in range(self.num_clients)
        ]
        self._queues = {}
        return self.engine.run_streams(streams)

    def run_shared(self, operations: Iterable) -> ScheduleResult:
        """Execute a shared stream (clients draw operations in order)."""
        return self.engine.run(operations)

    def run_mixed(
        self, generator, num_operations: int, update_fraction: float
    ) -> ScheduleResult:
        """Execute a generator's mixed stream dealt over this session's clients."""
        streams = generator.client_streams(
            self.num_clients, num_operations, update_fraction
        )
        return self.engine.run_streams(streams)

    def update_many(
        self, updates: Iterable[Tuple[int, Point]]
    ) -> BatchScheduleResult:
        """Batch counterpart of :meth:`MovingObjectIndex.update_many`.

        The same group-by-leaf execution, but non-conflicting groups run as
        concurrent virtual operations instead of draining serially.
        """
        operations = self.index._update_ops(updates)
        return self.engine.run_batch(operations)

    def client_io(self) -> Dict[int, "ClientIOCounters"]:
        """Physical I/O attributed to each client during the last run."""
        return self.index.buffer.client_io_table()
