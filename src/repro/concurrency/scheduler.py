"""Deterministic discrete-event scheduler for virtual clients.

This is the concurrency substrate shared by every operation path: single
operations, batch groups and multi-client streams are all scheduled as
:class:`VirtualOperation` work items over *N* virtual clients under a
:class:`~repro.concurrency.locks.LockManager`.  Real OS threads in CPython
would be serialised by the interpreter lock and hide exactly the effect
being measured, so concurrency is modelled on a **logical clock**:

1. an idle client draws its next operation (from a shared stream or its own
   per-client stream), asks the operation for its granule lock set, and
   tries to acquire it all-or-nothing;
2. on success the operation **executes immediately and for real** against
   the index; its measured physical I/O determines how long the client is
   busy on the logical clock (``io × time_per_io + cpu_time_per_op``);
3. on conflict the client blocks; it retries — with a freshly recomputed
   lock scope, since the tree may have changed — every time some other
   client completes and releases locks;
4. the makespan is the logical time at which the last operation completes,
   and throughput is operations divided by makespan.

Unlike the record/replay pipeline this replaces, interleavings are *live*:
the order in which operations acquire locks is the order in which they
mutate the index, so contention shapes both the schedule and the work
itself.  Determinism is preserved because the event queue ordering is total
(ties broken by client id) and clients are dispatched in id order — the same
seed always yields the identical makespan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.concurrency.locks import LockManager, LockMode


class VirtualOperation:
    """One schedulable unit of work.

    Subclasses supply the two halves the scheduler needs: the granule lock
    set (recomputed on every dispatch attempt, so predictions track the live
    index) and the real execution, which returns the physical I/O count that
    the logical clock converts into busy time.
    """

    #: Reporting label, matching the typed operation model's kinds
    #: (:attr:`repro.api.operations.Operation.kind`: "update", "query",
    #: "knn", ...) plus the batch-level labels "group" and "migration".
    kind: str = "operation"

    def lock_requests(self) -> List[Tuple[Hashable, LockMode]]:
        """``(granule, mode)`` pairs to acquire before running."""
        raise NotImplementedError

    def execute(self, client: int) -> int:
        """Run the operation for real; returns its physical I/O count."""
        raise NotImplementedError


@dataclass
class ClientReport:
    """Per-virtual-client accounting of one scheduled run."""

    operations: int = 0
    busy_time: float = 0.0
    physical_io: int = 0


@dataclass
class ScheduleResult:
    """Outcome of one scheduled run (single ops, a batch, or streams)."""

    operations: int
    makespan: float
    total_busy_time: float
    lock_waits: int
    num_clients: int
    time_per_io: float
    clients: Dict[int, ClientReport] = field(default_factory=dict)
    #: Executed operations grouped by their ``kind`` label ("update",
    #: "query", "group", "migration", ...) — how sharded runs report their
    #: cross-shard migration share without re-deriving it from the workload.
    kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Operations per unit of logical time."""
        if self.makespan <= 0:
            return 0.0
        return self.operations / self.makespan

    @property
    def utilisation(self) -> float:
        """Average fraction of time clients spent executing (not waiting)."""
        if self.makespan <= 0 or self.num_clients == 0:
            return 0.0
        return self.total_busy_time / (self.makespan * self.num_clients)

    @property
    def total_physical_io(self) -> int:
        """Physical page transfers across every client."""
        return sum(report.physical_io for report in self.clients.values())


class OperationScheduler:
    """Schedules virtual operations over N clients under granule locking.

    Parameters
    ----------
    num_clients:
        Number of concurrent virtual clients (the paper uses 50).
    time_per_io:
        Logical seconds per physical page transfer.  The default (0.01 s)
        corresponds to a 10 ms random I/O, the classic magnetic-disk figure
        of the paper's era; only ratios matter for the reproduced trends.
    cpu_time_per_op:
        Fixed CPU service time added to every operation.
    """

    def __init__(
        self,
        num_clients: int = 50,
        time_per_io: float = 0.01,
        cpu_time_per_op: float = 0.001,
    ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if time_per_io < 0 or cpu_time_per_op < 0:
            raise ValueError("times must be non-negative")
        self.num_clients = num_clients
        self.time_per_io = time_per_io
        self.cpu_time_per_op = cpu_time_per_op

    # ------------------------------------------------------------------
    def run(self, operations: Iterable[VirtualOperation]) -> ScheduleResult:
        """Clients draw from one shared stream, in dispatch order."""
        shared: Iterator[VirtualOperation] = iter(operations)

        def draw(client: int) -> Optional[VirtualOperation]:
            return next(shared, None)

        return self._run(draw, self.num_clients)

    def run_streams(
        self, streams: Sequence[Iterable[VirtualOperation]]
    ) -> ScheduleResult:
        """Each client consumes its own stream (one stream per client)."""
        if not streams:
            raise ValueError("at least one client stream is required")
        iterators = [iter(stream) for stream in streams]

        def draw(client: int) -> Optional[VirtualOperation]:
            return next(iterators[client], None)

        return self._run(draw, len(iterators))

    # ------------------------------------------------------------------
    def _run(
        self,
        draw: Callable[[int], Optional[VirtualOperation]],
        num_clients: int,
    ) -> ScheduleResult:
        lock_manager = LockManager()
        clock = 0.0
        total_busy = 0.0
        lock_waits = 0
        executed = 0
        kinds: Dict[str, int] = {}
        clients = {client: ClientReport() for client in range(num_clients)}

        idle: List[int] = list(range(num_clients))
        blocked: Dict[int, VirtualOperation] = {}
        running: List[Tuple[float, int]] = []  # (finish_time, client)

        def try_start(client: int, operation: VirtualOperation, now: float) -> bool:
            nonlocal total_busy, executed
            if not lock_manager.try_acquire_all(
                operation.lock_requests(), owner=client
            ):
                return False
            io_cost = operation.execute(client)
            duration = max(io_cost, 0) * self.time_per_io + self.cpu_time_per_op
            heapq.heappush(running, (now + duration, client))
            report = clients[client]
            report.operations += 1
            report.busy_time += duration
            report.physical_io += max(io_cost, 0)
            total_busy += duration
            executed += 1
            kind = getattr(operation, "kind", "operation")
            kinds[kind] = kinds.get(kind, 0) + 1
            return True

        while True:
            made_progress = True
            while made_progress:
                made_progress = False
                # Retry blocked clients first (a release may have freed them);
                # their lock scopes are recomputed against the live index.
                for client in sorted(blocked):
                    if try_start(client, blocked[client], clock):
                        del blocked[client]
                        made_progress = True
                # Hand new operations to idle clients, in client-id order.
                while idle:
                    client = idle.pop(0)
                    operation = draw(client)
                    if operation is None:
                        continue  # stream drained; the client stays retired
                    if try_start(client, operation, clock):
                        made_progress = True
                    else:
                        lock_waits += 1
                        blocked[client] = operation

            if not running:
                if not blocked:
                    break  # every stream drained, everything finished
                # Nothing runs, so no locks are held and every blocked
                # operation must be startable; if the dispatch pass above
                # failed to start any of them the lock-scope derivation is
                # inconsistent — fail loudly rather than spin forever.
                raise RuntimeError(
                    "schedule stalled: blocked operations while no locks are held"
                )

            finish_time, client = heapq.heappop(running)
            clock = max(clock, finish_time)
            lock_manager.release_all(client)
            idle.append(client)

        return ScheduleResult(
            operations=executed,
            makespan=clock,
            total_busy_time=total_busy,
            lock_waits=lock_waits,
            num_clients=num_clients,
            time_per_io=self.time_per_io,
            clients=clients,
            kinds=kinds,
        )
