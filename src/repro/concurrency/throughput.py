"""End-to-end throughput experiment (Figure 8).

The experiment measures operations per second for a mixed workload of window
queries and updates under DGL locking with many concurrent clients, for each
update strategy.  It proceeds in two phases:

1. **Recording phase** — the mixed operation stream is executed once against
   the index (single-threaded).  For every operation we record its physical
   I/O count (from the shared :class:`~repro.storage.stats.IOStatistics`) and
   the set of leaf granules it touched (from the buffer pool's access log),
   from which the DGL layer derives its lock requests.
2. **Simulation phase** — the recorded traces are replayed by the
   :class:`~repro.concurrency.simulator.ThroughputSimulator` over *N* virtual
   clients; the reported throughput is operations divided by the simulated
   makespan.

See DESIGN.md ("Substitutions") for why a simulation replaces real threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.concurrency.dgl import DGLProtocol
from repro.concurrency.simulator import OperationTrace, ThroughputResult, ThroughputSimulator
from repro.core.index import MovingObjectIndex
from repro.workload.generator import WorkloadGenerator


@dataclass
class ThroughputExperiment:
    """Configuration of one throughput measurement."""

    num_operations: int = 2_000
    update_fraction: float = 0.5
    num_clients: int = 50
    time_per_io: float = 0.01
    cpu_time_per_op: float = 0.001

    def __post_init__(self) -> None:
        if self.num_operations <= 0:
            raise ValueError("num_operations must be positive")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")


def record_traces(
    index: MovingObjectIndex,
    generator: WorkloadGenerator,
    experiment: ThroughputExperiment,
) -> List[OperationTrace]:
    """Execute the mixed stream once and capture per-operation traces."""
    protocol = DGLProtocol(
        leaf_pages={leaf.page_id for leaf in index.tree.leaf_nodes()}
    )
    traces: List[OperationTrace] = []
    buffer = index.buffer

    for kind, payload in generator.mixed_operations(
        experiment.num_operations, experiment.update_fraction
    ):
        access_log: list = []
        buffer.access_log = access_log
        before = index.stats.total_physical_io
        if kind == "update":
            oid, _old, new = payload
            index.update(oid, new)
        else:
            index.range_query(payload)
        io_cost = index.stats.total_physical_io - before
        buffer.access_log = None

        reads = [page for access, page in access_log if access == "read"]
        writes = [page for access, page in access_log if access == "write"]
        # Keep the protocol's view of which pages are leaves current: updates
        # may have split leaves or created new ones.
        for leaf in _new_leaves(index, protocol):
            protocol.register_leaf(leaf)
        if kind == "update":
            requests = protocol.requests_for_update(reads, writes)
        else:
            requests = protocol.requests_for_query(reads)
        traces.append(OperationTrace(kind=kind, physical_io=io_cost, lock_requests=requests))
    return traces


def _new_leaves(index: MovingObjectIndex, protocol: DGLProtocol) -> List[int]:
    """Leaf pages present in the tree but unknown to the protocol yet."""
    current = {leaf.page_id for leaf in index.tree.leaf_nodes()}
    return [page for page in current if not protocol.is_leaf_granule(page)]


def run_throughput(
    index: MovingObjectIndex,
    generator: WorkloadGenerator,
    experiment: Optional[ThroughputExperiment] = None,
) -> ThroughputResult:
    """Record the mixed stream on *index* and simulate its concurrent execution."""
    experiment = experiment if experiment is not None else ThroughputExperiment()
    traces = record_traces(index, generator, experiment)
    simulator = ThroughputSimulator(
        num_clients=experiment.num_clients,
        time_per_io=experiment.time_per_io,
        cpu_time_per_op=experiment.cpu_time_per_op,
    )
    return simulator.run(traces)
