"""End-to-end throughput experiment (Figure 8), on the online engine.

The experiment measures operations per second for a mixed workload of window
queries and updates under DGL locking with many concurrent clients, for each
update strategy.  Operations are **executed online**: virtual clients draw
from the generator's mixed stream, every operation predicts its granule lock
scope through the strategy's ``lock_scope()`` hook, acquires the locks, runs
for real against the index on a deterministic logical clock, and blocks on
conflict — see :mod:`repro.concurrency.engine`.  Throughput is the number of
operations divided by the resulting makespan.

This replaces the earlier two-phase record-then-replay pipeline, in which
every operation was executed once single-threaded and its trace replayed:
there, interleavings could never affect outcomes, the batch engine was
invisible to the concurrency layer, and the lock sets were observations
rather than predictions.  With the engine, the same scheduler serves single
operations, batches and multi-client streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.concurrency.engine import OnlineOperationEngine
from repro.concurrency.scheduler import ScheduleResult

if TYPE_CHECKING:  # avoid import cycles; both arrive as arguments
    from repro.core.index import MovingObjectIndex
    from repro.workload.generator import WorkloadGenerator


@dataclass
class ThroughputExperiment:
    """Configuration of one throughput measurement."""

    num_operations: int = 2_000
    update_fraction: float = 0.5
    num_clients: int = 50
    time_per_io: float = 0.01
    cpu_time_per_op: float = 0.001

    def __post_init__(self) -> None:
        if self.num_operations <= 0:
            raise ValueError("num_operations must be positive")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")


def run_throughput(
    index: "MovingObjectIndex",
    generator: "WorkloadGenerator",
    experiment: Optional[ThroughputExperiment] = None,
) -> ScheduleResult:
    """Execute the mixed stream on *index* online, over N virtual clients."""
    experiment = experiment if experiment is not None else ThroughputExperiment()
    engine = OnlineOperationEngine(
        index,
        num_clients=experiment.num_clients,
        time_per_io=experiment.time_per_io,
        cpu_time_per_op=experiment.cpu_time_per_op,
    )
    return engine.run(
        generator.mixed_operations(
            experiment.num_operations, experiment.update_fraction
        )
    )
