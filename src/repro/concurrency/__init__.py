"""Concurrency control and the online operation engine.

Section 3.2.2 of the paper argues that bottom-up updates fit naturally into
Dynamic Granular Locking (DGL, Chakrabarti & Mehrotra): the lockable granules
are the leaf-level MBRs (plus external granules for space not covered by any
leaf), top-down operations acquire locks on every overlapping granule, and a
bottom-up update acquires the locks of the leaves it touches, so the two
interleave consistently.  Section 5.4 measures throughput with 50 concurrent
clients and varying update/query mixes (Figure 8).

This package provides:

* :mod:`repro.concurrency.locks` — a generic multi-granularity lock manager
  (S / X / IS / IX modes);
* :mod:`repro.concurrency.dgl` — the DGL protocol layer: granule identities
  (leaf pages, the external granule, the coarse tree granule), lock-request
  records, and the derivation of lock sets from observed page accesses;
* :mod:`repro.concurrency.scheduler` — the deterministic logical-clock
  scheduler of N virtual clients (real OS threads would be serialised by
  the Python interpreter's global lock and distort the measurement);
* :mod:`repro.concurrency.engine` — the online operation engine: live
  operations predict their lock scope through the strategies'
  ``lock_scope()`` hooks, execute for real under the scheduler, and block
  on conflict; shared by single operations, conflict-aware batch group
  scheduling, and multi-client session streams;
* :mod:`repro.concurrency.throughput` — the end-to-end throughput
  experiment used for Figure 8, driving the engine.
"""

from repro.concurrency.dgl import (
    EXTERNAL_GRANULE,
    TREE_GRANULE,
    DGLProtocol,
    GranuleLockRequest,
    merge_requests,
    namespace_pairs,
)
from repro.concurrency.engine import (
    BatchScheduleResult,
    ConcurrentSession,
    GroupOperation,
    OnlineOperationEngine,
    PreparedBatch,
    ReplayOperation,
)
from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.scheduler import (
    ClientReport,
    OperationScheduler,
    ScheduleResult,
    VirtualOperation,
)
from repro.concurrency.throughput import ThroughputExperiment, run_throughput

__all__ = [
    "LockManager",
    "LockMode",
    "DGLProtocol",
    "GranuleLockRequest",
    "merge_requests",
    "EXTERNAL_GRANULE",
    "TREE_GRANULE",
    "OperationScheduler",
    "ScheduleResult",
    "ClientReport",
    "VirtualOperation",
    "OnlineOperationEngine",
    "ConcurrentSession",
    "BatchScheduleResult",
    "GroupOperation",
    "ReplayOperation",
    "PreparedBatch",
    "namespace_pairs",
    "ThroughputExperiment",
    "run_throughput",
]
