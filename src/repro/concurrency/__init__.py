"""Concurrency control and the throughput experiment.

Section 3.2.2 of the paper argues that bottom-up updates fit naturally into
Dynamic Granular Locking (DGL, Chakrabarti & Mehrotra): the lockable granules
are the leaf-level MBRs (plus external granules for space not covered by any
leaf), top-down operations acquire locks on every overlapping granule, and a
bottom-up update acquires the locks of the leaves it touches, so the two
interleave consistently.  Section 5.4 measures throughput with 50 concurrent
clients and varying update/query mixes (Figure 8).

This package provides:

* :mod:`repro.concurrency.locks` — a generic multi-granularity lock manager
  (S / X / IS / IX modes, FIFO queuing);
* :mod:`repro.concurrency.dgl` — the DGL protocol layer that maps index
  operations to granule lock requests;
* :mod:`repro.concurrency.simulator` — a deterministic discrete-event
  simulator of N concurrent clients (real OS threads would be serialised by
  the Python interpreter's global lock and distort the measurement; the
  simulator charges each operation its measured I/O cost and models lock
  waits explicitly — see DESIGN.md, "Substitutions");
* :mod:`repro.concurrency.throughput` — the end-to-end throughput experiment
  used for Figure 8.
"""

from repro.concurrency.dgl import DGLProtocol, GranuleLockRequest
from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.simulator import OperationTrace, ThroughputResult, ThroughputSimulator
from repro.concurrency.throughput import ThroughputExperiment, run_throughput

__all__ = [
    "LockManager",
    "LockMode",
    "DGLProtocol",
    "GranuleLockRequest",
    "OperationTrace",
    "ThroughputResult",
    "ThroughputSimulator",
    "ThroughputExperiment",
    "run_throughput",
]
