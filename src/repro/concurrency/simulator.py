"""Deterministic discrete-event simulation of concurrent clients.

The paper measures throughput by running 50 threads against the index under
DGL locking (Figure 8).  Real OS threads in CPython would be serialised by
the interpreter lock and hide exactly the effect being measured, so this
module replaces them with a discrete-event simulation:

1. every operation has already been executed once against the index (by the
   :mod:`repro.concurrency.throughput` driver), which recorded its physical
   I/O count and the granule lock set it needs;
2. the simulator then replays those :class:`OperationTrace` records over *N*
   virtual clients: each client picks the next unassigned operation, tries to
   acquire the operation's full lock set (all-or-nothing), runs for a
   duration proportional to the operation's I/O (plus a CPU term), releases
   its locks and repeats; a client that cannot acquire its locks is blocked
   until some operation completes;
3. throughput is the number of operations divided by the simulated makespan.

The simulation is deterministic: ties are broken by client id and the event
queue ordering is total, so repeated runs give identical results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.concurrency.dgl import GranuleLockRequest
from repro.concurrency.locks import LockManager


@dataclass
class OperationTrace:
    """One operation as observed during the recording pass."""

    kind: str                       # "update" or "query"
    physical_io: int                # page transfers charged to the operation
    lock_requests: List[GranuleLockRequest] = field(default_factory=list)

    def duration(self, time_per_io: float, cpu_time: float) -> float:
        """Simulated service time of the operation."""
        return max(self.physical_io, 0) * time_per_io + cpu_time


@dataclass
class ThroughputResult:
    """Outcome of a simulated run."""

    operations: int
    makespan: float
    total_busy_time: float
    lock_waits: int
    num_clients: int
    time_per_io: float

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.operations / self.makespan

    @property
    def utilisation(self) -> float:
        """Average fraction of time clients spent executing (not waiting)."""
        if self.makespan <= 0 or self.num_clients == 0:
            return 0.0
        return self.total_busy_time / (self.makespan * self.num_clients)


class ThroughputSimulator:
    """Replays operation traces over N virtual clients under a lock manager.

    Parameters
    ----------
    num_clients:
        Number of concurrent clients (the paper uses 50).
    time_per_io:
        Simulated seconds per physical page transfer.  The default (0.01 s)
        corresponds to a 10 ms random I/O, the classic magnetic-disk figure
        of the paper's era; only ratios matter for the reproduced trends.
    cpu_time_per_op:
        Fixed CPU service time added to every operation.
    """

    def __init__(
        self,
        num_clients: int = 50,
        time_per_io: float = 0.01,
        cpu_time_per_op: float = 0.001,
    ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if time_per_io < 0 or cpu_time_per_op < 0:
            raise ValueError("times must be non-negative")
        self.num_clients = num_clients
        self.time_per_io = time_per_io
        self.cpu_time_per_op = cpu_time_per_op

    # ------------------------------------------------------------------
    def run(self, traces: Sequence[OperationTrace]) -> ThroughputResult:
        """Simulate the execution of *traces* and return the throughput result."""
        lock_manager = LockManager()
        clock = 0.0
        next_op = 0
        total_ops = len(traces)
        total_busy = 0.0
        lock_waits = 0

        # Each client is either idle (ready to pick up work), blocked (holding
        # an operation it could not lock), or running until `finish_time`.
        idle_clients: List[int] = list(range(self.num_clients))
        blocked: Dict[int, Tuple[OperationTrace, int]] = {}
        # Event queue of (finish_time, client_id, op_index) for running clients.
        running: List[Tuple[float, int, int]] = []
        running_ops: Dict[int, OperationTrace] = {}

        def try_start(client: int, trace: OperationTrace, op_index: int, now: float) -> bool:
            nonlocal total_busy
            pairs = [(request.granule, request.mode) for request in trace.lock_requests]
            if lock_manager.try_acquire_all(pairs, owner=client):
                duration = trace.duration(self.time_per_io, self.cpu_time_per_op)
                heapq.heappush(running, (now + duration, client, op_index))
                running_ops[client] = trace
                total_busy += duration
                return True
            return False

        completed = 0
        while completed < total_ops:
            # Dispatch work to idle clients first.
            made_progress = True
            while made_progress:
                made_progress = False
                # Retry blocked clients (a release may have unblocked them).
                for client in sorted(list(blocked)):
                    trace, trace_index = blocked[client]
                    if try_start(client, trace, trace_index, clock):
                        del blocked[client]
                        made_progress = True
                # Hand new operations to idle clients.
                while idle_clients and next_op < total_ops:
                    client = idle_clients.pop(0)
                    trace = traces[next_op]
                    op_index = next_op
                    next_op += 1
                    if try_start(client, trace, op_index, clock):
                        made_progress = True
                    else:
                        lock_waits += 1
                        blocked[client] = (trace, op_index)

            if not running:
                if not blocked and next_op >= total_ops:
                    break  # everything dispatched and finished
                if blocked:
                    # Nothing is running, so no locks are held and every
                    # blocked operation must be startable; if the dispatch
                    # pass above failed to start any of them the lock-set
                    # derivation is inconsistent — fail loudly rather than
                    # spin forever.
                    raise RuntimeError(
                        "simulation stalled: blocked operations while no locks are held"
                    )
                continue

            # Advance the clock to the next completion.
            finish_time, client, _op_index = heapq.heappop(running)
            clock = max(clock, finish_time)
            lock_manager.release_all(client)
            running_ops.pop(client, None)
            idle_clients.append(client)
            completed += 1

        return ThroughputResult(
            operations=total_ops,
            makespan=clock,
            total_busy_time=total_busy,
            lock_waits=lock_waits,
            num_clients=self.num_clients,
            time_per_io=self.time_per_io,
        )
