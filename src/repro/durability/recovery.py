"""Crash recovery: replay the WAL tail on top of the latest checkpoint.

Recovery is classic redo logging.  :func:`repro.core.persistence.load_index`
restores the checkpoint, then :func:`replay_into` re-applies every intact
log frame in **global LSN order** — the per-shard logs and the coordinator
meta log are merged on their shared LSN sequence, so a cross-shard
migration's two halves replay at the logical instant they committed.  Each
log's intact prefix ends at its first torn frame
(:func:`repro.durability.wal.read_frames`); everything before that point is
re-applied, everything after it is the crash's lost tail.

Replay is **idempotent** (records upsert / tolerant-delete), which makes
three things safe:

* re-applying operations the checkpoint already contains (a crash between
  the durable checkpoint landing and its log rotation completing leaves
  logs covering ops the checkpoint already holds — replaying them in order
  still converges on the same state);
* double-logged fallback paths (a bulk leaf-group migration that degrades
  to per-object reroutes);
* asymmetric torn tails of a migration's two logs: an arrival record whose
  matching departure was torn away moves the object anyway (the ownership
  map deletes it from the stale shard), so the migration replays whole from
  either surviving half that contains the arrival.  The reverse asymmetry —
  a durable departure whose matching arrival was lost in another log's torn
  tail — is an **orphaned departure**: both halves of a migration share one
  LSN, so replay detects the missing arrival and skips the departure, and
  the object stays on its source shard at its old position instead of
  vanishing.  The arrival frame's durability is thereby the precondition
  for the departure taking effect, under every sync policy and regardless
  of the order the OS flushed the two logs.

After replay a sharded index rebuilds its object directory from the shards'
own position tables and installs the **last** logged repartition, so routing
matches the recovered placement.
"""

from __future__ import annotations

import heapq
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple, Union

from repro.api.errors import CheckpointError, CorruptLogError
from repro.durability.commit import checkpoint_path, meta_log_path, shard_log_paths
from repro.durability.wal import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_MIGRATE_IN,
    KIND_MIGRATE_OUT,
    KIND_REPARTITION,
    KIND_SET_STRATEGY,
    KIND_UPDATE,
    LogRecord,
    read_frames,
)

#: Record kinds that (up)place an object at a position.
_ARRIVALS = frozenset((KIND_INSERT, KIND_UPDATE, KIND_MIGRATE_IN))
#: Record kinds that remove an object from the logging shard.
_DEPARTURES = frozenset((KIND_DELETE, KIND_MIGRATE_OUT))


@dataclass
class RecoveryReport:
    """What one :func:`replay_into` pass re-applied."""

    frames: int = 0
    records: int = 0
    last_lsn: int = 0
    repartitioned: bool = False
    #: ``migrate_out`` records skipped because their matching arrival was
    #: lost in another log's torn tail (the object stayed on its source).
    orphaned_departures: int = 0
    applied: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.applied.items())
        )
        orphaned = (
            f", {self.orphaned_departures} orphaned departure(s) skipped"
            if self.orphaned_departures
            else ""
        )
        return (
            f"replayed {self.records} records in {self.frames} frames "
            f"(last lsn {self.last_lsn}){': ' + kinds if kinds else ''}{orphaned}"
        )


def _tagged_frames(
    shard_id: int, path: Path
) -> Iterator[Tuple[int, int, List[LogRecord]]]:
    for lsn, records in read_frames(path):
        yield lsn, shard_id, records


def replay_into(index: Any, directory: Union[str, Path]) -> RecoveryReport:
    """Re-apply the intact WAL prefix under *directory* onto *index*.

    *index* is a freshly checkpoint-restored facade — a single
    :class:`~repro.core.index.MovingObjectIndex` (replays shard log 0) or a
    :class:`~repro.shard.index.ShardedIndex` (replays each shard's log into
    that shard, then rebuilds the object directory and applies the last
    logged repartition).  Must run *before* a durability manager is
    attached, so replay itself is never re-logged.
    """
    from repro.shard.index import ShardedIndex  # lazy: core imports this module's package

    directory = Path(directory)
    report = RecoveryReport()
    sharded = isinstance(index, ShardedIndex)
    subs: List[Any] = list(index.shards) if sharded else [index]
    logs = shard_log_paths(directory)
    for shard_id, path in logs.items():
        if shard_id >= len(subs):
            raise CorruptLogError(
                f"{path.name} names shard {shard_id}, but the checkpoint "
                f"restored only {len(subs)} shard(s)"
            )

    #: Which sub-index currently holds each object, in replay's view.  An
    #: arrival for an object another shard still holds deletes the stale
    #: copy first — that is what repairs a migration whose departure record
    #: was torn away while its arrival survived.
    owner: Dict[int, int] = {
        oid: shard_id
        for shard_id, sub in enumerate(subs)
        for oid in sub._positions
    }

    streams = [_tagged_frames(sid, path) for sid, path in sorted(logs.items())]
    merged = heapq.merge(*streams)
    for lsn, unit in itertools.groupby(merged, key=lambda tagged: tagged[0]):
        frames = list(unit)
        report.last_lsn = max(report.last_lsn, lsn)
        # Frames sharing an LSN are one commit unit (a migration's two
        # halves, a group handoff's fan-out).  A ``migrate_out`` with no
        # matching ``migrate_in`` anywhere in its unit is *orphaned*: the
        # arrival landed in another log's torn tail, so applying the
        # departure would delete the object with nowhere for it to land.
        # Skipping it leaves the object on its source shard — the arrival
        # frame's durability is the precondition for the departure taking
        # effect, whatever order the OS flushed the two logs in.
        arrived = {
            record.oid
            for _lsn, _sid, unit_records in frames
            for record in unit_records
            if record.kind == KIND_MIGRATE_IN
        }
        for _lsn, shard_id, records in frames:
            report.frames += 1
            sub = subs[shard_id]
            for record in records:
                if record.kind == KIND_MIGRATE_OUT and record.oid not in arrived:
                    report.orphaned_departures += 1
                    continue
                report.records += 1
                report.applied[record.kind] = report.applied.get(record.kind, 0) + 1
                if record.kind == KIND_SET_STRATEGY:
                    # Re-enter the strategy that was live when the records
                    # after this one were written; the last switch in the
                    # log leaves the shard on its at-crash strategy.
                    sub.set_strategy(record.payload.decode("utf-8"))
                elif record.kind in _ARRIVALS:
                    stale = owner.get(record.oid)
                    if stale is not None and stale != shard_id:
                        subs[stale].delete(record.oid)
                    if record.oid in sub._positions:
                        sub.update(record.oid, record.position())
                    else:
                        sub.insert(record.oid, record.position())
                    owner[record.oid] = shard_id
                elif record.kind in _DEPARTURES:
                    # Tolerant: the object may already have left this shard
                    # (a departure whose matching arrival replayed first, or
                    # a double-logged reroute fallback).
                    if owner.get(record.oid) == shard_id:
                        sub.delete(record.oid)
                        del owner[record.oid]
                else:
                    raise CorruptLogError(
                        f"record kind {record.kind!r} is not valid in shard "
                        f"log {shard_id}"
                    )

    partitioner_spec: Any = None
    for lsn, records in read_frames(meta_log_path(directory)):
        report.frames += 1
        report.last_lsn = max(report.last_lsn, lsn)
        for record in records:
            report.records += 1
            report.applied[record.kind] = report.applied.get(record.kind, 0) + 1
            if record.kind != KIND_REPARTITION:
                raise CorruptLogError(
                    f"record kind {record.kind!r} is not valid in the meta log"
                )
            partitioner_spec = json.loads(record.payload.decode("utf-8"))

    if sharded:
        if partitioner_spec is not None:
            from repro.shard.partitioner import partitioner_from_spec

            index.partitioner = partitioner_from_spec(partitioner_spec)
            report.repartitioned = True
        # The directory is derived state; replay wrote object placement
        # directly into the shards, so rebuild it from them.
        index._shard_of = {
            oid: shard_id
            for shard_id, sub in enumerate(subs)
            for oid in sub._positions
        }
    return report


def recover_index(directory: Union[str, Path]) -> Any:
    """Restore the durable index living under *directory*.

    Convenience wrapper: loads ``<directory>/checkpoint.json`` (which
    replays the WAL tail and re-attaches the durability manager — see
    :func:`repro.core.persistence.load_index`).
    """
    from repro.core.persistence import load_index  # lazy: avoid import cycle

    target = checkpoint_path(directory)
    if not target.exists():
        raise CheckpointError(
            f"no checkpoint under {Path(directory)} — a durable index "
            f"checkpoints on load()/checkpoint(), nothing to recover yet"
        )
    return load_index(target)


__all__ = ["RecoveryReport", "replay_into", "recover_index"]
