"""Group commit: one manager owning every log of one durable index.

A :class:`DurabilityManager` is attached to a facade (single
:class:`~repro.core.index.MovingObjectIndex` or coordinator-side
:class:`~repro.shard.index.ShardedIndex`) and is the only writer of its
logs.  It owns three things the individual
:class:`~repro.durability.wal.WriteAheadLog` files cannot decide alone:

* **the LSN** — one monotonic counter shared by *all* logs of the index,
  so a cross-shard migration can appear in two shard logs as one commit
  unit, and so recovery can truncate every log at a single logical instant;
* **the sync policy** — ``always`` fsyncs each commit unit, ``group``
  fsyncs batch units immediately (the batch *is* the group) and lets
  single-operation units accumulate until ``group_size`` of them are
  pending, ``none`` never fsyncs;
* **checkpoint rotation** — after a checkpoint lands, every log restarts
  empty while the LSN keeps counting.

Log layout under ``directory``::

    checkpoint.json      the checkpoint the logs are relative to
    shard-0000.wal       per-shard redo logs (shard 0 doubles as the
    shard-0001.wal       single-index log for a non-sharded facade)
    meta.wal             coordinator metadata (repartition records)

Coordinator-side logging is what keeps the ``process`` shard backend
answer-identical: every public mutation of ``ShardedIndex`` runs on the
coordinator before being dispatched, so the log sees the same stream no
matter which backend executes it.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, Mapping, Sequence, Set, Union

from repro.durability.wal import (
    SYNC_POLICIES,
    LogRecord,
    WriteAheadLog,
    last_lsn,
    repartition_record,
)

#: Shard id of the single-index log (a non-sharded facade logs as shard 0).
SINGLE_SHARD = 0
#: Internal shard id of the coordinator metadata log.
META_SHARD = -1

_SHARD_LOG_PATTERN = re.compile(r"^shard-(\d{4})\.wal$")
_META_LOG_NAME = "meta.wal"
_CHECKPOINT_NAME = "checkpoint.json"

DEFAULT_SYNC = "group"
DEFAULT_GROUP_SIZE = 64


def normalise_spec(spec: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate and normalise a ``{"dir", "sync", "group_size"}`` section.

    Side-effect free (no directories are created), so the builder can
    normalise a spec without touching disk.
    """
    unknown = set(spec) - {"dir", "sync", "group_size"}
    if unknown:
        raise ValueError(f"unknown durability spec keys: {sorted(unknown)}")
    if "dir" not in spec:
        raise ValueError("durability spec requires a 'dir' key")
    directory = str(spec["dir"])
    sync = str(spec.get("sync", DEFAULT_SYNC))
    if sync not in SYNC_POLICIES:
        raise ValueError(
            f"durability sync policy must be one of {SYNC_POLICIES}, got {sync!r}"
        )
    group_size = spec.get("group_size", DEFAULT_GROUP_SIZE)
    if not isinstance(group_size, int) or isinstance(group_size, bool) or group_size < 1:
        raise ValueError(f"durability group_size must be a positive int, got {group_size!r}")
    return {"dir": directory, "sync": sync, "group_size": group_size}


def shard_log_paths(directory: Union[str, Path]) -> Dict[int, Path]:
    """Shard logs present under *directory*, keyed by shard id."""
    directory = Path(directory)
    paths: Dict[int, Path] = {}
    if not directory.is_dir():
        return paths
    for entry in sorted(directory.iterdir()):
        match = _SHARD_LOG_PATTERN.match(entry.name)
        if match is not None:
            paths[int(match.group(1))] = entry
    return paths


def meta_log_path(directory: Union[str, Path]) -> Path:
    return Path(directory) / _META_LOG_NAME


def checkpoint_path(directory: Union[str, Path]) -> Path:
    return Path(directory) / _CHECKPOINT_NAME


class DurabilityManager:
    """Write-ahead logging with group commit for one index.

    ``frames`` arguments map shard ids to the records that shard's log
    receives; every log touched by one call shares one LSN, making the
    call a single commit unit.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        sync: str = DEFAULT_SYNC,
        group_size: int = DEFAULT_GROUP_SIZE,
    ) -> None:
        spec = normalise_spec(
            {"dir": str(directory), "sync": sync, "group_size": group_size}
        )
        self.directory = Path(spec["dir"])
        self.sync_policy: str = spec["sync"]
        self.group_size: int = spec["group_size"]
        self.directory.mkdir(parents=True, exist_ok=True)
        self._logs: Dict[int, WriteAheadLog] = {}
        self._dirty: Set[int] = set()
        self._pending_ops = 0
        # Continue the LSN sequence past whatever the existing logs hold, so
        # re-attaching after recovery keeps the ordering total.
        highest = 0
        for path in shard_log_paths(self.directory).values():
            highest = max(highest, last_lsn(path))
        highest = max(highest, last_lsn(meta_log_path(self.directory)))
        self._lsn = highest

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> Path:
        """Where :func:`repro.core.persistence.save_index` checkpoints this index."""
        return checkpoint_path(self.directory)

    def log_path(self, shard_id: int) -> Path:
        if shard_id == META_SHARD:
            return meta_log_path(self.directory)
        return self.directory / f"shard-{shard_id:04d}.wal"

    @property
    def last_lsn(self) -> int:
        return self._lsn

    # ------------------------------------------------------------------
    # Commit units
    # ------------------------------------------------------------------
    def _log(self, shard_id: int) -> WriteAheadLog:
        log = self._logs.get(shard_id)
        if log is None:
            log = WriteAheadLog(self.log_path(shard_id))
            self._logs[shard_id] = log
        return log

    def _append_unit(self, frames: Mapping[int, Sequence[LogRecord]]) -> int:
        self._lsn += 1
        for shard_id, records in frames.items():
            if records:
                self._log(shard_id).append(self._lsn, records)
                self._dirty.add(shard_id)
        return self._lsn

    def _sync_dirty(self) -> None:
        for shard_id in sorted(self._dirty):
            self._logs[shard_id].sync()
        self._dirty.clear()
        self._pending_ops = 0

    def log_record(self, shard_id: int, record: LogRecord) -> int:
        """Log one routed operation as its own frame (per-op commit unit)."""
        return self.log_unit({shard_id: (record,)}, barrier=False)

    def log_unit(
        self, frames: Mapping[int, Sequence[LogRecord]], barrier: bool = True
    ) -> int:
        """Log one commit unit spanning one or more shard logs.

        ``barrier=True`` marks a batch-shaped unit (a whole dispatch, a bulk
        migration, a repartition): under ``group`` sync the batch *is* the
        group, so it is fsynced immediately.  ``barrier=False`` marks a
        single routed operation, which under ``group`` sync accumulates
        until ``group_size`` operations are pending.
        """
        if not any(records for records in frames.values()):
            return self._lsn
        lsn = self._append_unit(frames)
        if self.sync_policy == "always":
            self._sync_dirty()
        elif self.sync_policy == "group":
            if barrier:
                self._sync_dirty()
            else:
                self._pending_ops += 1
                if self._pending_ops >= self.group_size:
                    self._sync_dirty()
        return lsn

    def log_repartition(self, partitioner_spec: Mapping[str, Any]) -> int:
        """Log a partitioner change to the coordinator metadata log."""
        record = repartition_record(dict(partitioner_spec))
        return self.log_unit({META_SHARD: (record,)}, barrier=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """fsync every log with unsynced frames (any policy)."""
        self._sync_dirty()

    def rotate(self) -> None:
        """Truncate every log after a checkpoint; the LSN keeps counting.

        Logs that exist on disk but have not been opened by this manager
        (left over from a previous process) are truncated too — after a
        checkpoint *no* log may still describe pre-checkpoint history.
        """
        on_disk = set(shard_log_paths(self.directory))
        for shard_id in on_disk | set(self._logs):
            self._log(shard_id).truncate()
        meta = meta_log_path(self.directory)
        if META_SHARD in self._logs or meta.exists():
            self._log(META_SHARD).truncate()
        self._dirty.clear()
        self._pending_ops = 0

    def close(self) -> None:
        """fsync and close every log (detach)."""
        for log in self._logs.values():
            log.close(sync=True)
        self._logs.clear()
        self._dirty.clear()
        self._pending_ops = 0

    # ------------------------------------------------------------------
    # Spec codec
    # ------------------------------------------------------------------
    def to_spec(self) -> Dict[str, Any]:
        return {
            "dir": str(self.directory),
            "sync": self.sync_policy,
            "group_size": self.group_size,
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "DurabilityManager":
        normalised = normalise_spec(spec)
        return cls(
            normalised["dir"],
            sync=normalised["sync"],
            group_size=normalised["group_size"],
        )

    def __repr__(self) -> str:
        return (
            f"DurabilityManager(dir={str(self.directory)!r}, "
            f"sync={self.sync_policy!r}, group_size={self.group_size}, "
            f"lsn={self._lsn})"
        )


__all__ = [
    "DurabilityManager",
    "normalise_spec",
    "shard_log_paths",
    "meta_log_path",
    "checkpoint_path",
    "SINGLE_SHARD",
    "META_SHARD",
    "DEFAULT_SYNC",
    "DEFAULT_GROUP_SIZE",
]
