"""Append-only write-ahead log of typed index operations.

The frozen :class:`~repro.api.operations.Operation` dataclasses are already
the system's canonical description of a mutation, so they are the log record
too — this module only gives them a durable binary shape.  A log file is a
sequence of **frames**; each frame is one commit unit (a single routed
operation, or a whole batch dispatch under group commit) and is written as::

    <I body_length> <I crc32(body)>      frame header (8 bytes)
    <Q lsn> <I record_count>             body prefix  (12 bytes, CRC-covered)
    record*                              CRC-covered records

Records are fixed little-endian structs keyed by a kind byte:

========  ======================  ==========================================
kind      payload                 replay semantics
========  ======================  ==========================================
insert    ``<Q oid><d x><d y>``   upsert the object at (x, y)
update    ``<Q oid><d x><d y>``   upsert the object at (x, y)
delete    ``<Q oid>``             remove the object (no-op when absent)
migr_in   ``<Q oid><d x><d y>``   shard-local half of a migration: arrive
migr_out  ``<Q oid>``             shard-local half of a migration: depart
repart    ``<I len><bytes json>`` install this partitioner spec (meta log)
set_strat ``<I len><bytes name>`` switch the shard's live update strategy
========  ======================  ==========================================

Two corruption classes are kept deliberately distinct:

* a **torn frame** — the tail of a log whose last write never completed
  (short header, body running past EOF, CRC mismatch).  This is the normal
  signature of a crash; :func:`read_frames` stops cleanly at the first torn
  frame and recovery replays the intact prefix.  A :class:`WriteAheadLog`
  reopening such a file truncates it to that prefix
  (:func:`intact_prefix_length`) before appending, so frames logged after
  a recovery never land beyond the tear where a second recovery would
  miss them.
* a **corrupt frame** — a frame that passes the length and CRC checks yet
  decodes to nonsense (unknown kind byte, record overrunning the body, LSN
  running backwards).  That is media/logic corruption, not a crash, and
  always raises :class:`~repro.api.errors.CorruptLogError`.

Sync policy is the writer's knob (see
:class:`~repro.durability.commit.DurabilityManager`): the log itself only
exposes :meth:`WriteAheadLog.append` (buffered write + OS flush) and
:meth:`WriteAheadLog.sync` (fsync).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Dict, Iterator, List, Sequence, Tuple, Union

from repro.api.errors import CorruptLogError
from repro.geometry import Point

#: Writer sync policies: ``always`` fsyncs every frame, ``group`` fsyncs
#: batch frames and every ``group_size`` single-operation frames, ``none``
#: never fsyncs (the OS decides; an OS crash may lose the tail).
SYNC_POLICIES: Tuple[str, ...] = ("always", "group", "none")

KIND_INSERT = "insert"
KIND_UPDATE = "update"
KIND_DELETE = "delete"
KIND_MIGRATE_IN = "migrate_in"
KIND_MIGRATE_OUT = "migrate_out"
KIND_REPARTITION = "repartition"
KIND_SET_STRATEGY = "set_strategy"

_KIND_CODES: Dict[str, int] = {
    KIND_INSERT: 1,
    KIND_UPDATE: 2,
    KIND_DELETE: 3,
    KIND_MIGRATE_IN: 4,
    KIND_MIGRATE_OUT: 5,
    KIND_REPARTITION: 6,
    KIND_SET_STRATEGY: 7,
}
_CODE_KINDS: Dict[int, str] = {code: kind for kind, code in _KIND_CODES.items()}

#: Kinds whose record carries a position.
_POINT_KINDS = frozenset((KIND_INSERT, KIND_UPDATE, KIND_MIGRATE_IN))
#: Kinds whose record carries only the object id.
_OID_KINDS = frozenset((KIND_DELETE, KIND_MIGRATE_OUT))

_FRAME_HEADER = struct.Struct("<II")  # body length, crc32(body)
_BODY_PREFIX = struct.Struct("<QI")  # lsn, record count
_POINT_RECORD = struct.Struct("<BQdd")  # kind, oid, x, y
_OID_RECORD = struct.Struct("<BQ")  # kind, oid
_PAYLOAD_HEADER = struct.Struct("<BI")  # kind, payload length

#: Upper bound on a sane frame body; anything larger read back from disk is
#: treated as a torn length field rather than attempted as an allocation.
MAX_FRAME_BODY = 64 * 1024 * 1024


@dataclass(frozen=True)
class LogRecord:
    """One logged mutation (shard-local) or metadata event.

    ``oid``/``x``/``y`` are meaningful for the object kinds; ``payload``
    carries the UTF-8 JSON document of a ``repartition`` record.
    """

    kind: str
    oid: int = 0
    x: float = 0.0
    y: float = 0.0
    payload: bytes = b""

    def position(self) -> Point:
        """The record's position as a :class:`~repro.geometry.Point`."""
        return Point(self.x, self.y)


# ----------------------------------------------------------------------
# Record constructors (the vocabulary the facades log with)
# ----------------------------------------------------------------------
def insert_record(oid: int, location: Point) -> LogRecord:
    return LogRecord(KIND_INSERT, oid=oid, x=location.x, y=location.y)


def update_record(oid: int, new_location: Point) -> LogRecord:
    return LogRecord(KIND_UPDATE, oid=oid, x=new_location.x, y=new_location.y)


def delete_record(oid: int) -> LogRecord:
    return LogRecord(KIND_DELETE, oid=oid)


def migrate_in_record(oid: int, location: Point) -> LogRecord:
    return LogRecord(KIND_MIGRATE_IN, oid=oid, x=location.x, y=location.y)


def migrate_out_record(oid: int) -> LogRecord:
    return LogRecord(KIND_MIGRATE_OUT, oid=oid)


def repartition_record(spec: Dict[str, Any]) -> LogRecord:
    return LogRecord(
        KIND_REPARTITION, payload=json.dumps(spec, sort_keys=True).encode("utf-8")
    )


def set_strategy_record(name: str) -> LogRecord:
    """A live strategy switch on the logging shard (payload = strategy name).

    Logged by ``set_strategy`` so recovery replays the log tail into the
    strategy that was active when each subsequent record was written, and
    recovers the shard with the strategy that was live at the crash.
    """
    return LogRecord(KIND_SET_STRATEGY, payload=name.upper().encode("utf-8"))


# ----------------------------------------------------------------------
# Binary codec
# ----------------------------------------------------------------------
def encode_record(record: LogRecord) -> bytes:
    """The binary image of one record."""
    code = _KIND_CODES.get(record.kind)
    if code is None:
        raise ValueError(f"unknown log record kind {record.kind!r}")
    if record.kind in _POINT_KINDS:
        return _POINT_RECORD.pack(code, record.oid, record.x, record.y)
    if record.kind in _OID_KINDS:
        return _OID_RECORD.pack(code, record.oid)
    return _PAYLOAD_HEADER.pack(code, len(record.payload)) + record.payload


def encode_frame(lsn: int, records: Sequence[LogRecord]) -> bytes:
    """One commit unit as a length-prefixed, CRC-checked frame."""
    body = _BODY_PREFIX.pack(lsn, len(records)) + b"".join(
        encode_record(record) for record in records
    )
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes, where: str) -> Tuple[int, List[LogRecord]]:
    """Decode a CRC-valid frame body; structural nonsense is corruption."""
    lsn, count = _BODY_PREFIX.unpack_from(body, 0)
    offset = _BODY_PREFIX.size
    records: List[LogRecord] = []
    for _ in range(count):
        if offset >= len(body):
            raise CorruptLogError(f"{where}: record count overruns frame body")
        kind = _CODE_KINDS.get(body[offset])
        if kind is None:
            raise CorruptLogError(f"{where}: unknown record kind byte {body[offset]}")
        try:
            if kind in _POINT_KINDS:
                code, oid, x, y = _POINT_RECORD.unpack_from(body, offset)
                offset += _POINT_RECORD.size
                records.append(LogRecord(kind, oid=oid, x=x, y=y))
            elif kind in _OID_KINDS:
                code, oid = _OID_RECORD.unpack_from(body, offset)
                offset += _OID_RECORD.size
                records.append(LogRecord(kind, oid=oid))
            else:
                code, length = _PAYLOAD_HEADER.unpack_from(body, offset)
                offset += _PAYLOAD_HEADER.size
                if offset + length > len(body):
                    raise CorruptLogError(
                        f"{where}: payload record overruns frame body"
                    )
                records.append(
                    LogRecord(kind, payload=bytes(body[offset : offset + length]))
                )
                offset += length
        except struct.error as error:
            raise CorruptLogError(f"{where}: truncated record inside frame") from error
    if offset != len(body):
        raise CorruptLogError(f"{where}: {len(body) - offset} trailing bytes in frame")
    return int(lsn), records


def _scan_frames(
    data: bytes, name: str, strict: bool
) -> Iterator[Tuple[int, List[LogRecord], int]]:
    """Walk the frames of *data*, yielding ``(lsn, records, end_offset)``.

    ``end_offset`` is the byte just past the frame — the running length of
    the intact prefix.  Torn-tail handling follows *strict* (see
    :func:`read_frames`); structural corruption always raises.
    """
    offset = 0
    frame_index = 0
    previous_lsn = -1
    while offset < len(data):
        where = f"{name}: frame {frame_index} at byte {offset}"
        if offset + _FRAME_HEADER.size > len(data):
            if strict:
                raise CorruptLogError(f"{where}: torn frame header")
            return
        body_length, crc = _FRAME_HEADER.unpack_from(data, offset)
        body_start = offset + _FRAME_HEADER.size
        if body_length < _BODY_PREFIX.size or body_length > MAX_FRAME_BODY:
            if strict:
                raise CorruptLogError(f"{where}: implausible body length {body_length}")
            return
        if body_start + body_length > len(data):
            if strict:
                raise CorruptLogError(f"{where}: torn frame body")
            return
        body = data[body_start : body_start + body_length]
        if zlib.crc32(body) != crc:
            if strict:
                raise CorruptLogError(f"{where}: CRC mismatch")
            return
        lsn, records = _decode_body(body, where)
        if lsn <= previous_lsn:
            raise CorruptLogError(
                f"{where}: LSN {lsn} does not advance past {previous_lsn}"
            )
        previous_lsn = lsn
        offset = body_start + body_length
        yield lsn, records, offset
        frame_index += 1


def read_frames(
    path: Union[str, Path], strict: bool = False
) -> Iterator[Tuple[int, List[LogRecord]]]:
    """Iterate ``(lsn, records)`` frames from a log file.

    With ``strict=False`` (recovery mode) the iteration stops cleanly at the
    first *torn* frame — a short header, a body length running past EOF, or
    a CRC mismatch — which is the on-disk signature of a crash mid-append.
    With ``strict=True`` a torn frame raises
    :class:`~repro.api.errors.CorruptLogError` instead.

    A frame that passes the CRC yet decodes to nonsense, or whose LSN runs
    backwards, raises :class:`CorruptLogError` in **both** modes: that is
    not what a crash produces.
    """
    path = Path(path)
    if not path.exists():
        return
    data = path.read_bytes()
    for lsn, records, _end in _scan_frames(data, path.name, strict):
        yield lsn, records


def intact_prefix_length(path: Union[str, Path]) -> int:
    """Byte length of the intact frame prefix of *path* (0 when absent).

    Everything past this offset is a torn tail — the debris of a crash
    mid-append.  A writer reopening the log must truncate to this length
    before appending: frames written after a torn frame would be
    unreachable (:func:`read_frames` stops at the tear), so the next
    recovery would silently lose them.
    """
    path = Path(path)
    if not path.exists():
        return 0
    data = path.read_bytes()
    end = 0
    for _lsn, _records, end in _scan_frames(data, path.name, strict=False):
        pass
    return end


def last_lsn(path: Union[str, Path]) -> int:
    """Highest LSN of the intact frame prefix of *path* (0 when empty/absent)."""
    highest = 0
    for lsn, _records in read_frames(path):
        highest = lsn
    return highest


class WriteAheadLog:
    """One append-only log file (one shard's, or the coordinator meta log).

    The log is opened for append and every :meth:`append` writes one frame
    and flushes it to the OS; :meth:`sync` forces it to the device.  When to
    call :meth:`sync` is the :class:`~repro.durability.commit.DurabilityManager`'s
    decision — that is where the ``always``/``group``/``none`` policy lives.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # A crash can leave a torn frame at the tail.  Recovery replays the
        # intact prefix and stops there — so must the writer: appending
        # beyond the tear would put every new frame where read_frames never
        # reaches, and the *next* recovery would silently drop them all.
        # Truncate to the intact prefix before the first append resumes.
        intact = intact_prefix_length(self.path)
        self._file: BinaryIO = open(self.path, "ab")
        if self.path.stat().st_size > intact:
            self._file.truncate(intact)
            os.fsync(self._file.fileno())
        #: True when frames have been appended since the last :meth:`sync`.
        self.dirty = False

    def append(self, lsn: int, records: Sequence[LogRecord]) -> None:
        """Append one frame and flush it to the OS (not yet to the device)."""
        self._file.write(encode_frame(lsn, records))
        self._file.flush()
        self.dirty = True

    def sync(self) -> None:
        """fsync the file; after this the appended frames survive an OS crash."""
        if self._file.closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self.dirty = False

    def truncate(self) -> None:
        """Drop every frame (checkpoint rotation: the log restarts empty)."""
        self._file.close()
        self._file = open(self.path, "wb")
        self._file.flush()
        os.fsync(self._file.fileno())
        self.dirty = False

    def close(self, sync: bool = True) -> None:
        if self._file.closed:
            return
        if sync and self.dirty:
            self.sync()
        self._file.close()

    def frames(self, strict: bool = False) -> Iterator[Tuple[int, List[LogRecord]]]:
        """Read the frames currently on disk (flushes buffered writes first)."""
        if not self._file.closed:
            self._file.flush()
        return read_frames(self.path, strict=strict)

    def __repr__(self) -> str:
        return f"WriteAheadLog({str(self.path)!r})"


__all__ = [
    "SYNC_POLICIES",
    "LogRecord",
    "WriteAheadLog",
    "read_frames",
    "intact_prefix_length",
    "last_lsn",
    "encode_frame",
    "encode_record",
    "insert_record",
    "update_record",
    "delete_record",
    "migrate_in_record",
    "migrate_out_record",
    "repartition_record",
    "set_strategy_record",
    "KIND_INSERT",
    "KIND_UPDATE",
    "KIND_DELETE",
    "KIND_MIGRATE_IN",
    "KIND_MIGRATE_OUT",
    "KIND_REPARTITION",
    "KIND_SET_STRATEGY",
]
