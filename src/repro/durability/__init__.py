"""repro.durability — write-ahead logging, group commit, and crash recovery.

The durability subsystem makes an index survive crashes between
checkpoints:

* :mod:`repro.durability.wal` — the append-only binary log format: one
  CRC32-checked, length-prefixed frame per commit unit, carrying the typed
  operations as fixed-layout records with monotonic LSNs;
* :mod:`repro.durability.commit` — :class:`DurabilityManager`, which owns
  one log per shard plus a coordinator meta log, assigns LSNs, applies the
  sync policy (``always`` / ``group`` / ``none``), and rotates the logs
  when a checkpoint lands;
* :mod:`repro.durability.recovery` — replay of the intact log prefix on
  top of the latest checkpoint, truncating at the first torn frame.

Typical usage is declarative — the builder attaches the manager and
persistence does the rest::

    import repro

    index = repro.open_index({
        "kind": "sharded", "shards": 4,
        "config": {"strategy": "GBU"},
        "durability": {"dir": "/var/lib/moi", "sync": "group",
                       "group_size": 64},
    })
    index.load(objects)           # writes the initial checkpoint
    index.update_many(updates)    # each dispatch = one fsynced log frame

    # ...crash...

    from repro.durability import recover_index
    index = recover_index("/var/lib/moi")   # checkpoint + WAL tail
"""

from repro.durability.commit import (
    DEFAULT_GROUP_SIZE,
    DEFAULT_SYNC,
    META_SHARD,
    SINGLE_SHARD,
    DurabilityManager,
    checkpoint_path,
    meta_log_path,
    normalise_spec,
    shard_log_paths,
)
from repro.durability.recovery import RecoveryReport, recover_index, replay_into
from repro.durability.wal import (
    SYNC_POLICIES,
    LogRecord,
    WriteAheadLog,
    delete_record,
    insert_record,
    intact_prefix_length,
    last_lsn,
    migrate_in_record,
    migrate_out_record,
    read_frames,
    repartition_record,
    update_record,
)

__all__ = [
    "DurabilityManager",
    "WriteAheadLog",
    "LogRecord",
    "RecoveryReport",
    "recover_index",
    "replay_into",
    "read_frames",
    "intact_prefix_length",
    "last_lsn",
    "insert_record",
    "update_record",
    "delete_record",
    "migrate_in_record",
    "migrate_out_record",
    "repartition_record",
    "normalise_spec",
    "shard_log_paths",
    "meta_log_path",
    "checkpoint_path",
    "SYNC_POLICIES",
    "DEFAULT_SYNC",
    "DEFAULT_GROUP_SIZE",
    "SINGLE_SHARD",
    "META_SHARD",
]
