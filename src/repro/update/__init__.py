"""Update strategies — the paper's primary contribution.

Three strategies are provided, matching the ones evaluated in Section 5:

* :class:`~repro.update.topdown.TopDownUpdate` (**TD**) — the traditional
  R-tree update: a top-down delete traversal followed by a top-down insert.
* :class:`~repro.update.localized.LocalizedBottomUpUpdate` (**LBU**) —
  Algorithm 1: reach the leaf through the secondary object-ID hash index,
  update in place when possible, otherwise enlarge the leaf MBR by ε in all
  directions (bounded by the parent MBR, reached through a leaf-level parent
  pointer) or shift the object to a sibling, falling back to a top-down
  update.
* :class:`~repro.update.generalized.GeneralizedBottomUpUpdate` (**GBU**) —
  Algorithm 2: like LBU but driven by the main-memory summary structure, with
  directional ε-extension (``iExtendMBR``, Algorithm 4), sibling shifting
  with piggybacking, and bounded ascent to the lowest covering ancestor
  (``FindParent``, Algorithm 3).

A fourth strategy, :class:`~repro.update.naive.NaiveBottomUpUpdate`, is the
preliminary bottom-up idea discussed at the start of Section 3.1 (update in
place or give up and go top-down); it exists to reproduce the paper's
observation that ~82 % of its updates on uniform data degrade to top-down.

All strategies implement :class:`~repro.update.base.UpdateStrategy` and are
constructed by :func:`~repro.update.factory.make_strategy`.

Beyond the per-operation strategies, :mod:`repro.update.batch` provides a
group-by-leaf batch execution engine: operation streams are grouped by
target leaf page and each group is applied through the strategy's
``apply_group`` hook with one leaf read/write plus one deferred
ancestor-MBR adjustment pass, instead of one full traversal per update.

For concurrent execution, every strategy also predicts the DGL granule
lock footprint of its operations (``lock_scope`` / ``query_lock_scope`` /
``group_lock_scope``): the top-down baseline locks every leaf its descents
may visit, the bottom-up strategies lock only the object's leaf, candidate
shift siblings and the adjusted ancestors — the Section 3.2.2 asymmetry
the online engine (:mod:`repro.concurrency.engine`) schedules against.
"""

from repro.update.base import BatchUpdate, UpdateOutcome, UpdateStrategy
from repro.update.batch import (
    BatchExecutor,
    BatchResult,
    DeleteOp,
    InsertOp,
    QueryOp,
)
from repro.update.factory import make_strategy, strategy_names
from repro.update.generalized import GeneralizedBottomUpUpdate
from repro.update.localized import LocalizedBottomUpUpdate
from repro.update.naive import NaiveBottomUpUpdate
from repro.update.params import TuningParameters
from repro.update.topdown import TopDownUpdate

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BatchUpdate",
    "DeleteOp",
    "InsertOp",
    "QueryOp",
    "UpdateOutcome",
    "UpdateStrategy",
    "TuningParameters",
    "TopDownUpdate",
    "NaiveBottomUpUpdate",
    "LocalizedBottomUpUpdate",
    "GeneralizedBottomUpUpdate",
    "make_strategy",
    "strategy_names",
]
