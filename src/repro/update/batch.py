"""Group-by-leaf batch execution of update streams.

The paper's motivation is an update rate so high that the index is the
bottleneck; its answer is to make each *individual* update cheap by working
bottom-up from the object's leaf.  This module carries the same idea one
step further along the axis real ingestion engines use: when updates arrive
in batches, many of them target the *same* leaf — Gaussian and skewed
workloads concentrate hot objects on hot pages — yet the per-operation path
re-reads and re-writes that leaf once per update.  The batch engine

1. **plans in memory** — pending updates are grouped by their current leaf
   page, resolved through the secondary object-ID hash index (the same
   structure that gives the bottom-up strategies their leaf access; for GBU
   the summary structure's direct access table supplies the parent and
   sibling context of each group);
2. **executes each group bottom-up** — the strategy's
   :meth:`~repro.update.base.UpdateStrategy.apply_group` hook reads the leaf
   once, absorbs every group member it can (in place, by one shared
   ε-extension, or by bulk sibling shifts), writes the leaf once, and fixes
   all affected ancestor MBRs in one deferred
   :meth:`~repro.rtree.tree.RTree.adjust_upward` pass;
3. **replays the rest sequentially** — updates a group pass cannot absorb
   (root escapes, underflow hazards, ascents) go through the ordinary
   per-operation strategy code, so every structural corner case is handled
   by exactly the code that handles it in the one-at-a-time regime.

Sequential equivalence
----------------------
A batch yields the same query answers as applying its operations one by one:

* every operation carries the object's **absolute** new position, so an
  object's final entry depends only on its *last* update in the batch —
  which both regimes apply last (pending updates to the same object are
  coalesced onto the earliest slot, keeping the first old position and the
  latest new one);
* updates to *different* objects commute at query granularity: each group
  pass only rewrites the affected objects' entry rectangles (or moves them
  between leaves under the same parent), never drops or duplicates an
  object, and keeps every MBR a valid bound — the trees produced by the two
  regimes may differ in shape, but index the identical object→position map;
* inserts, deletes and queries act as **barriers**: all pending updates are
  flushed before one executes, so a query inside a batch observes exactly
  the positions a sequential execution would.

Groups are formed just in time, one at a time: a residual replay may
restructure the tree (splits, CondenseTree re-insertions) and move objects
that are still pending, so each group re-resolves its members' leaves at the
moment it is executed.  The group's leaf is pinned in the buffer pool for
the duration of the pass so interleaved reads cannot evict it mid-group.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple, Union

import repro.api.operations as api_ops
from repro.api.errors import DuplicateObjectError, UnknownObjectError
from repro.geometry import Point, Rect
from repro.rtree.tree import RTree
from repro.secondary import ObjectHashIndex
from repro.storage.buffer import BufferPool
from repro.storage.stats import IOStatistics
from repro.update.base import BatchUpdate, UpdateStrategy


class InsertOp(NamedTuple):
    """Insert a brand-new object."""

    oid: int
    location: Point


class DeleteOp(NamedTuple):
    """Remove an object (``location`` is its last known position)."""

    oid: int
    location: Point


class QueryOp(NamedTuple):
    """Answer a window query; the result lands in :attr:`BatchResult.queries`."""

    window: Rect


class KNNOp(NamedTuple):
    """Answer a kNN query; the result lands in :attr:`BatchResult.neighbors`."""

    point: Point
    k: int


Operation = Union[BatchUpdate, InsertOp, DeleteOp, QueryOp, KNNOp]


def parse_operation_stream(
    operations: Iterable["api_ops.OperationLike"],
    position_of: "Callable[[int], Optional[Point]]",
    strict_deletes: bool = False,
) -> Tuple[List[Operation], Dict[int, Optional[Point]]]:
    """Parse a stream of typed operations into executable batch operations.

    This is the one stream grammar both facades share.  The native currency
    is the typed :class:`repro.api.operations.Operation` model; legacy
    tuples are accepted through :meth:`Operation.from_any` (the deprecated
    compatibility adapter).  The stream is validated against an overlay so a
    bad operation mid-stream (unknown oid, duplicate insert) raises before
    anything executes.  *position_of* supplies the pre-stream position of an
    object; the returned overlay maps each touched oid to its post-stream
    position (``None`` = deleted), for callers that pre-commit a position
    map.

    A delete of an absent object raises
    :class:`~repro.api.errors.UnknownObjectError` under
    ``strict_deletes=True`` (the typed surface's default behaviour) and
    parses to nothing otherwise — the legacy adapter's sequential semantics
    (no barrier, no effect).
    """
    overlay: Dict[int, Optional[Point]] = {}

    def current(oid: int) -> Optional[Point]:
        return overlay[oid] if oid in overlay else position_of(oid)

    parsed: List[Operation] = []
    for item in operations:
        op = api_ops.Operation.from_any(item)
        if isinstance(op, (api_ops.Update, api_ops.Migrate)):
            old_location = current(op.oid)
            if old_location is None:
                raise UnknownObjectError(op.oid)
            parsed.append(BatchUpdate(op.oid, old_location, op.new_location))
            overlay[op.oid] = op.new_location
        elif isinstance(op, api_ops.Insert):
            if current(op.oid) is not None:
                raise DuplicateObjectError(op.oid)
            parsed.append(InsertOp(op.oid, op.location))
            overlay[op.oid] = op.location
        elif isinstance(op, api_ops.Delete):
            location = current(op.oid)
            if location is not None:
                parsed.append(DeleteOp(op.oid, location))
                overlay[op.oid] = None
            elif strict_deletes:
                raise UnknownObjectError(op.oid)
        elif isinstance(op, api_ops.RangeQuery):
            parsed.append(QueryOp(op.window))
        elif isinstance(op, api_ops.KNN):
            parsed.append(KNNOp(op.point, op.k))
        else:  # pragma: no cover - from_any only returns the above
            raise TypeError(f"unsupported operation {op!r}")
    return parsed, overlay


def coalesce_updates(
    updates: Iterable[BatchUpdate],
) -> Tuple["OrderedDict[int, BatchUpdate]", int, int]:
    """Collapse repeated updates of one object onto its earliest slot.

    Returns ``(pending, requested, coalesced)``: the surviving requests in
    first-seen order, the number submitted, and the number superseded.  A
    coalesced request keeps the **first** old position and the **latest**
    new position — only the last update of an object matters for the final
    state, which is what makes batch and sequential execution equivalent.
    This is the shared first half of every batch path: the serial executor,
    the planner, and the sharded router all coalesce with this rule.
    """
    pending: "OrderedDict[int, BatchUpdate]" = OrderedDict()
    requested = 0
    coalesced = 0
    for op in updates:
        requested += 1
        previous = pending.get(op.oid)
        if previous is not None:
            pending[op.oid] = BatchUpdate(
                op.oid, previous.old_location, op.new_location
            )
            coalesced += 1
        else:
            pending[op.oid] = op
    return pending, requested, coalesced


@dataclass
class BatchPlan:
    """Group-by-leaf partitioning of one update batch.

    ``buckets`` maps each target leaf page to its pending updates in stream
    order; the buckets' granule lock sets are what the concurrent engine
    schedules against each other (conflict-aware batch scheduling), and the
    serial path drains them front to back.  Planning is main-memory work:
    leaves are resolved through uncharged hash-index peeks.
    """

    buckets: "OrderedDict[int, List[BatchUpdate]]"
    #: Members with no indexed leaf yet (replayed through the per-op path).
    unindexed: List[BatchUpdate]
    #: Updates submitted, before coalescing.
    requested: int
    #: Updates superseded by a later update to the same object.
    coalesced: int


@dataclass
class BatchResult:
    """What one batch execution did, and what it cost.

    ``io`` is the per-batch :class:`IOStatistics` delta — the counters
    accumulated between the first and last operation of the batch, so
    callers can compare batch and per-operation cost without resetting the
    index-wide statistics.
    """

    updates: int = 0
    inserts: int = 0
    deletes: int = 0
    queries: List[List[int]] = field(default_factory=list)
    #: kNN answers (``(distance, oid)`` pairs) in stream order.
    neighbors: List[List[Tuple[float, int]]] = field(default_factory=list)
    #: Updates superseded by a later update to the same object in the batch.
    coalesced: int = 0
    #: Leaf groups executed through ``apply_group``.
    groups: int = 0
    #: Size of the largest single group.
    largest_group: int = 0
    #: Updates replayed through the per-operation path.
    residuals: int = 0
    #: Updates that crossed a shard boundary (sharded index only).
    migrations: int = 0
    io: IOStatistics = field(default_factory=IOStatistics)

    @property
    def grouped_updates(self) -> int:
        """Updates absorbed by group passes (after coalescing)."""
        return self.updates - self.coalesced - self.residuals - self.migrations

    def describe(self) -> str:
        migrated = f", migrations={self.migrations}" if self.migrations else ""
        knn = f" knn={len(self.neighbors)}" if self.neighbors else ""
        return (
            f"updates={self.updates} (coalesced={self.coalesced}, "
            f"groups={self.groups}, residual={self.residuals}{migrated}) "
            f"inserts={self.inserts} deletes={self.deletes} "
            f"queries={len(self.queries)}{knn} | physical_reads={self.io.physical_reads} "
            f"physical_writes={self.io.physical_writes}"
        )


class BatchExecutor:
    """Executes operation streams with group-by-leaf amortisation.

    Parameters
    ----------
    tree:
        The R-tree the strategy operates on.
    strategy:
        Any of the four update strategies; its ``apply_group`` hook defines
        what a group pass can absorb.
    hash_index:
        Object-ID index used (uncharged, via :meth:`ObjectHashIndex.peek`)
        by the planner to resolve each pending update's current leaf.
        Planning is main-memory work; the strategies themselves charge one
        probe per absorbed update to keep the paper's accounting.
    buffer:
        Buffer pool whose pin/unpin protects each group's leaf.
    stats:
        Shared counters used to compute the per-batch I/O delta.
    """

    def __init__(
        self,
        tree: RTree,
        strategy: UpdateStrategy,
        hash_index: ObjectHashIndex,
        buffer: Optional[BufferPool] = None,
        stats: Optional[IOStatistics] = None,
    ) -> None:
        self.tree = tree
        self.strategy = strategy
        self.hash_index = hash_index
        self.buffer = buffer if buffer is not None else tree.buffer
        self.stats = stats if stats is not None else tree.disk.stats

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, operations: Iterable[Operation]) -> BatchResult:
        """Run *operations*; updates are batched, everything else is a barrier."""
        result = BatchResult()
        before = self.stats.snapshot()
        pending: "OrderedDict[int, BatchUpdate]" = OrderedDict()
        for op in operations:
            if isinstance(op, BatchUpdate):
                result.updates += 1
                previous = pending.get(op.oid)
                if previous is not None:
                    # Keep the earliest slot and the first old position; only
                    # the latest new position matters for the final state.
                    pending[op.oid] = BatchUpdate(
                        op.oid, previous.old_location, op.new_location
                    )
                    result.coalesced += 1
                else:
                    pending[op.oid] = op
            elif isinstance(op, InsertOp):
                self._flush(pending, result)
                self.strategy.insert(op.oid, op.location)
                result.inserts += 1
            elif isinstance(op, DeleteOp):
                self._flush(pending, result)
                self.strategy.delete(op.oid, op.location)
                result.deletes += 1
            elif isinstance(op, QueryOp):
                self._flush(pending, result)
                result.queries.append(self.strategy.range_query(op.window))
            elif isinstance(op, KNNOp):
                self._flush(pending, result)
                result.neighbors.append(self.tree.knn(op.point, op.k))
            else:
                raise TypeError(f"unsupported batch operation {op!r}")
        self._flush(pending, result)
        result.io = self.stats.snapshot().delta_since(before)
        return result

    # ------------------------------------------------------------------
    # Planning (shared by the serial drain and the concurrent engine)
    # ------------------------------------------------------------------
    def plan(self, updates: Iterable[BatchUpdate]) -> BatchPlan:
        """Coalesce *updates* per object and bucket them by current leaf.

        Repeated updates of one object collapse onto the earliest slot,
        keeping the first old position and the latest new one — identical to
        the coalescing :meth:`execute` performs inline.  Leaves are resolved
        with uncharged peeks; the paper's per-probe charge is paid at
        execution time by the strategies themselves.
        """
        pending, requested, coalesced = coalesce_updates(updates)
        buckets: "OrderedDict[int, List[BatchUpdate]]" = OrderedDict()
        unindexed: List[BatchUpdate] = []
        for request in pending.values():
            leaf_page = self.hash_index.peek(request.oid)
            if leaf_page is None:
                unindexed.append(request)
            else:
                buckets.setdefault(leaf_page, []).append(request)
        return BatchPlan(
            buckets=buckets,
            unindexed=unindexed,
            requested=requested,
            coalesced=coalesced,
        )

    def execute_group(
        self,
        leaf_page: int,
        bucket: List[BatchUpdate],
        result: BatchResult,
        reroute: Optional["OrderedDict[int, List[BatchUpdate]]"] = None,
    ) -> None:
        """Re-verify *bucket* against the live hash index and run the group pass.

        A residual replay (or, under the engine, a concurrently scheduled
        group) may have restructured the tree and moved members since the
        bucket was planned, so each member's leaf is re-resolved immediately
        before the pass.  Mismatched members are re-routed into *reroute*
        when given (the serial drain appends them to their current leaf's
        bucket) and replayed per-operation otherwise (the engine path, where
        sibling buckets may already have executed).
        """
        group: List[BatchUpdate] = []
        for request in bucket:
            current = self.hash_index.peek(request.oid)
            if current == leaf_page:
                group.append(request)
            elif current is None:
                self.replay(request, result)
            elif reroute is not None:
                reroute.setdefault(current, []).append(request)
            else:
                self.replay(request, result)
        if not group:
            return
        result.groups += 1
        result.largest_group = max(result.largest_group, len(group))
        self.buffer.pin(leaf_page)
        try:
            residuals = self.strategy.apply_group(leaf_page, group)
        finally:
            self.buffer.unpin(leaf_page)
        for request in residuals:
            self.replay(request, result)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flush(
        self, pending: "OrderedDict[int, BatchUpdate]", result: BatchResult
    ) -> None:
        """Drain *pending*, one leaf group at a time (serial execution)."""
        if not pending:
            return
        plan = self.plan(pending.values())
        pending.clear()
        for request in plan.unindexed:
            # Not indexed (yet): the per-operation path inserts it.
            self.replay(request, result)

        buckets = plan.buckets
        while buckets:
            leaf_page, bucket = buckets.popitem(last=False)
            self.execute_group(leaf_page, bucket, result, reroute=buckets)

    def replay(self, request: BatchUpdate, result: BatchResult) -> None:
        """Run one update through the ordinary per-operation path."""
        self.strategy.update(
            request.oid, request.old_location, request.new_location
        )
        result.residuals += 1
