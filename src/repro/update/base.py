"""Common interface of the update strategies.

Every strategy turns an update request — "object *oid*, last seen at
*old_location*, is now at *new_location*" — into a sequence of index
operations, and reports which of the paper's update classes the request fell
into (:class:`UpdateOutcome`).  The per-class counters a strategy keeps are
what reproduce statements such as "82 % of the updates remain top-down" for
the naive strategy and the TD-fallback rates discussed for GBU.

Strategies also expose :meth:`UpdateStrategy.range_query` so experiments can
issue the query workload through the same object: TD and LBU answer queries
with the plain top-down R-tree search, GBU answers them through the summary
structure (Section 3.2).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.concurrency.dgl import (
    EXTERNAL_GRANULE,
    TREE_GRANULE,
    GranuleLockRequest,
    merge_requests,
)
from repro.concurrency.locks import LockMode
from repro.geometry import Point, Rect
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.stats import IOStatistics


class BatchUpdate(NamedTuple):
    """One pending request of a batch: move *oid* from *old_location* to *new_location*."""

    oid: int
    old_location: Point
    new_location: Point


class UpdateOutcome(enum.Enum):
    """How an update was ultimately carried out."""

    IN_PLACE = "in_place"              # new position within the leaf MBR
    EXTENDED = "extended"              # leaf MBR enlarged (by ε) to cover it
    SIBLING_SHIFT = "sibling_shift"    # object moved to a sibling leaf
    ASCENDED = "ascended"              # re-inserted below a covering ancestor
    TOP_DOWN = "top_down"              # full top-down delete + insert
    INSERTED_NEW = "inserted_new"      # object was not in the index yet
    MIGRATED = "migrated"              # moved to another shard (sharded index)


class UpdateStrategy:
    """Base class for TD, LBU and GBU."""

    #: Short name used in reports and experiment configuration ("TD", ...).
    name: str = "abstract"

    def __init__(self, tree: RTree, stats: Optional[IOStatistics] = None) -> None:
        self.tree = tree
        self.stats = stats if stats is not None else tree.disk.stats
        self.outcome_counts: Dict[UpdateOutcome, int] = {
            outcome: 0 for outcome in UpdateOutcome
        }
        self.update_count = 0

    # ------------------------------------------------------------------
    # Lifecycle (hot swap — repro.core.index.MovingObjectIndex.set_strategy)
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Install the strategy's auxiliary state on the live tree.

        Called once after construction, both at index build time and when a
        live index switches to this strategy.  Implementations must be
        idempotent: the auxiliary state may already be present (a tree built
        for this strategy from the start, or a checkpoint restore).  The base
        strategies own no auxiliary state; LBU backfills leaf parent
        pointers, GBU attaches its summary structure as a tree observer.
        """

    def uninstall(self) -> None:
        """Release the strategy's auxiliary state from the live tree.

        Called when a live index switches *away* from this strategy.  After
        uninstall the tree must behave as if the strategy had never been
        active: LBU stops parent-pointer maintenance, GBU detaches its
        summary observer.
        """

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def update(self, oid: int, old_location: Point, new_location: Point) -> UpdateOutcome:
        """Move object *oid* from *old_location* to *new_location*."""
        outcome = self._update(oid, old_location, new_location)
        self.record_outcome(outcome)
        return outcome

    def _update(self, oid: int, old_location: Point, new_location: Point) -> UpdateOutcome:
        raise NotImplementedError

    def insert(self, oid: int, location: Point) -> None:
        """Insert a brand-new object (all strategies use the standard insert)."""
        self.tree.insert(oid, location)

    def delete(self, oid: int, location: Point) -> bool:
        """Remove an object from the index (standard top-down delete)."""
        return self.tree.delete(oid, location)

    def range_query(self, window: Rect) -> List[int]:
        """Answer a window query; strategies may override (GBU uses the summary)."""
        return self.tree.range_query(window)

    def iter_range_query(self, window: Rect) -> Iterator[int]:
        """Stream a window query's hits lazily (same order as :meth:`range_query`).

        Backs the public API's :class:`~repro.api.results.QueryCursor`:
        traversal I/O is paid only for results actually consumed.  GBU
        overrides this with the summary-guided descent.
        """
        return self.tree.iter_range_query(window)

    # ------------------------------------------------------------------
    # Batch execution (group-by-leaf, repro.update.batch)
    # ------------------------------------------------------------------
    def apply_group(
        self, leaf_page_id: int, group: Sequence[BatchUpdate]
    ) -> List[BatchUpdate]:
        """Apply a group of pending updates that all live in one leaf.

        The default hook amortises the paper's dominant update class over the
        whole group: the leaf is read **once**, every group member whose new
        position stays inside the leaf's effective MBR is carried out in
        place, and the leaf is written back **once** — where the
        per-operation path pays one leaf read and one leaf write for each of
        them.  Strategies override this to also absorb their cheap non-local
        classes (ε-extension, sibling shifting) at group granularity.

        Returns the *residual* sub-list of updates the group pass could not
        absorb; the batch executor replays those through the ordinary
        per-operation :meth:`update` path, which preserves the sequential
        semantics of the batch.
        """
        leaf = self.tree.read_node(leaf_page_id)
        residuals, dirty = self._apply_in_place(leaf, group)
        if dirty:
            self.tree.write_node(leaf)
        self._charge_batch_probes(len(group) - len(residuals))
        return residuals

    def _apply_in_place(
        self, leaf: Node, group: Sequence[BatchUpdate]
    ) -> Tuple[List[BatchUpdate], bool]:
        """In-place sweep over *group*; returns (residuals, leaf_dirty).

        The containment check uses the leaf MBR as it was when the group pass
        started: in-place moves of point entries can only shrink the tight
        bound, so the initial effective MBR remains a valid bound for every
        member of the group (and is itself contained in the parent's entry).
        """
        mbr = leaf.effective_mbr() if len(leaf) else None
        residuals: List[BatchUpdate] = []
        dirty = False
        for request in group:
            entry = leaf.find_entry(request.oid)
            if entry is not None and mbr is not None and mbr.contains_point(
                request.new_location
            ):
                entry.rect = Rect.from_point(request.new_location)
                dirty = True
                self.record_outcome(UpdateOutcome.IN_PLACE)
            else:
                residuals.append(request)
        return residuals, dirty

    def _charge_batch_probes(self, count: int) -> None:
        """Charge one secondary-index probe per batch-absorbed update.

        The batch planner groups updates with uncharged main-memory peeks,
        but the paper's cost model (Section 4.2) charges bottom-up strategies
        one I/O per object located through the hash index — an update carried
        out by a group pass must pay the same probe its per-operation
        counterpart would.  Residual updates are *not* charged here: they are
        replayed through :meth:`update`, which performs (and charges) its own
        lookup.  TD owns no hash index and stays uncharged.
        """
        hash_index = getattr(self, "hash_index", None)
        if count > 0 and hash_index is not None and hash_index.charge_io:
            self.stats.hash_index_reads += count

    # ------------------------------------------------------------------
    # Lock-scope prediction (DGL, concurrency engine)
    # ------------------------------------------------------------------
    def lock_scope(
        self, oid: int, old_location: Point, new_location: Point
    ) -> List[GranuleLockRequest]:
        """Predict the DGL granules this update must lock before it runs.

        The base implementation is the **top-down** scope (used verbatim by
        TD and by every bottom-up fallback): the delete descent may follow
        every subtree whose region covers the old position, so all leaves a
        FindLeaf search would visit are locked exclusively, plus the leaf the
        insert descent would choose for the new position — Section 3.2.2's
        observation that top-down updates lock many, widely spread granules.
        Bottom-up strategies override this with their far smaller scope (the
        object's leaf, possibly a sibling, possibly the adjusted ancestor).

        Prediction is made from uncharged peeks at dispatch time and is
        recomputed on every retry, so scopes track the live tree.
        """
        requests = [
            GranuleLockRequest(page, LockMode.EXCLUSIVE)
            for page in self.tree.predict_visited_leaves(Rect.from_point(old_location))
        ]
        requests.extend(self.insert_lock_scope(new_location))
        return merge_requests(requests)

    def query_lock_scope(self, window: Rect) -> List[GranuleLockRequest]:
        """Shared locks on every leaf granule a window query will visit."""
        requests = [
            GranuleLockRequest(page, LockMode.SHARED)
            for page in self.tree.predict_visited_leaves(window)
        ]
        requests.append(
            GranuleLockRequest(TREE_GRANULE, LockMode.INTENTION_SHARED)
        )
        return requests

    def insert_lock_scope(self, location: Point) -> List[GranuleLockRequest]:
        """Exclusive lock on the predicted insert target leaf.

        When the location falls outside the root MBR the insert grows the
        covered space, so the external granule is locked too — DGL's phantom
        protection for the uncovered region.
        """
        rect = Rect.from_point(location)
        requests = [
            GranuleLockRequest(
                self.tree.predict_insert_leaf(rect), LockMode.EXCLUSIVE
            )
        ]
        root_mbr = self.tree.root_mbr()
        if root_mbr is None or not root_mbr.contains_point(location):
            requests.append(GranuleLockRequest(EXTERNAL_GRANULE, LockMode.EXCLUSIVE))
        requests.append(
            GranuleLockRequest(TREE_GRANULE, LockMode.INTENTION_EXCLUSIVE)
        )
        return requests

    def delete_lock_scope(self, oid: int, location: Point) -> List[GranuleLockRequest]:
        """Exclusive locks on every leaf the delete's FindLeaf may visit."""
        requests = [
            GranuleLockRequest(page, LockMode.EXCLUSIVE)
            for page in self.tree.predict_visited_leaves(Rect.from_point(location))
        ]
        requests.append(
            GranuleLockRequest(TREE_GRANULE, LockMode.INTENTION_EXCLUSIVE)
        )
        return requests

    def group_lock_scope(
        self, leaf_page_id: int, group: Sequence[BatchUpdate]
    ) -> List[GranuleLockRequest]:
        """Granules a group-by-leaf batch pass over *leaf_page_id* locks.

        The base group pass reads and rewrites only the leaf itself, so the
        scope is one exclusive leaf granule; strategies whose group pass
        also adjusts the parent entry or shifts objects into siblings extend
        it.  Residual members are replayed per-operation by the batch
        executor inside the same scheduled slot — a deliberate timing-model
        approximation (their fallback I/O is charged to the group's
        duration, their extra granules are not contended for separately).
        """
        return [
            GranuleLockRequest(leaf_page_id, LockMode.EXCLUSIVE),
            GranuleLockRequest(TREE_GRANULE, LockMode.INTENTION_EXCLUSIVE),
        ]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def record_outcome(self, outcome: UpdateOutcome) -> None:
        """Count one completed update (used by both per-op and batch paths)."""
        self.outcome_counts[outcome] += 1
        self.update_count += 1

    def outcome_fractions(self) -> Dict[str, float]:
        """Fraction of updates per outcome (empty dict before any update)."""
        if self.update_count == 0:
            return {}
        return {
            outcome.value: count / self.update_count
            for outcome, count in self.outcome_counts.items()
            if count
        }

    def top_down_fraction(self) -> float:
        """Fraction of updates that degenerated to a full top-down update."""
        if self.update_count == 0:
            return 0.0
        return self.outcome_counts[UpdateOutcome.TOP_DOWN] / self.update_count

    def reset_counters(self) -> None:
        for outcome in self.outcome_counts:
            self.outcome_counts[outcome] = 0
        self.update_count = 0

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _top_down_update(self, oid: int, old_location: Point, new_location: Point) -> UpdateOutcome:
        """The traditional delete-then-insert update, shared by every fallback."""
        deleted = self.tree.delete(oid, old_location)
        self.tree.insert(oid, new_location)
        return UpdateOutcome.TOP_DOWN if deleted else UpdateOutcome.INSERTED_NEW

    def __repr__(self) -> str:
        return f"{type(self).__name__}(updates={self.update_count})"
