"""Tuning parameters of the bottom-up strategies (Section 3.2.1).

The paper exposes three tuning knobs plus a sibling-selection policy:

* **epsilon (ε)** — the maximum MBR enlargement.  LBU enlarges by ε in every
  direction; GBU enlarges only in the direction of movement and only as far
  as needed.  The paper's default is 0.003 (Table 1).
* **distance threshold (D)** — objects that moved further than D between
  consecutive updates are treated as fast movers: GBU tries a sibling shift
  before an MBR extension for them.  Default 0.03.
* **level threshold (L)** — the maximum number of levels GBU may ascend above
  the leaf when neither extension nor shifting works.  ``L = 0`` reduces GBU
  to an optimised localized strategy; ``None`` means "height − 1" (ascend up
  to the root), which is the paper's default setting.
* **piggyback** — when shifting an object to a sibling, also move other
  objects of the source leaf that fit in the sibling, redistributing objects
  and reducing overlap.  On by default (it is one of GBU's optimisations);
  exposed so the ablation benchmarks can switch it off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class TuningParameters:
    """Parameter bundle shared by the bottom-up strategies."""

    epsilon: float = 0.003
    distance_threshold: float = 0.03
    level_threshold: Optional[int] = None
    piggyback: bool = True
    max_piggyback_objects: int = 8

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.distance_threshold < 0:
            raise ValueError("distance_threshold must be non-negative")
        if self.level_threshold is not None and self.level_threshold < 0:
            raise ValueError("level_threshold must be non-negative or None")
        if self.max_piggyback_objects < 0:
            raise ValueError("max_piggyback_objects must be non-negative")

    def with_overrides(self, **changes) -> "TuningParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # The defaults above are the bold values of the paper's Table 1.
    @classmethod
    def paper_defaults(cls) -> "TuningParameters":
        """Defaults from Table 1: ε = 0.003, D = 0.03, L = height − 1."""
        return cls()
