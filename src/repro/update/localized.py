"""LBU — Localized Bottom-Up Update (Algorithm 1).

The localized strategy reaches the object's leaf through the secondary hash
index and tries, in order:

1. update in place when the new position lies within the leaf MBR;
2. enlarge the leaf MBR by ε **in all directions** — a Kwon-style lazy
   enlargement — provided the enlarged MBR stays within the parent MBR,
   which the strategy reads through the parent pointer stored in the leaf;
3. shift the object to a sibling leaf whose MBR already contains the new
   position (each candidate sibling must be read from disk to check that it
   is not full);
4. otherwise fall back to a full top-down update.

The strategy requires the tree to be built with ``store_parent_pointers=True``:
the leaf-level parent pointers reduce leaf fan-out and must be rewritten when
a level-1 node splits — the maintenance costs the paper identifies as LBU's
main weakness (Section 3.1 and the discussion of Figure 5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.concurrency.dgl import TREE_GRANULE, GranuleLockRequest, merge_requests
from repro.concurrency.locks import LockMode
from repro.geometry import Point, Rect
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.secondary import ObjectHashIndex
from repro.storage.stats import IOStatistics
from repro.update.base import BatchUpdate, UpdateOutcome, UpdateStrategy
from repro.update.params import TuningParameters


class LocalizedBottomUpUpdate(UpdateStrategy):
    """Algorithm 1 of the paper."""

    name = "LBU"

    def __init__(
        self,
        tree: RTree,
        hash_index: ObjectHashIndex,
        params: Optional[TuningParameters] = None,
        stats: Optional[IOStatistics] = None,
    ) -> None:
        super().__init__(tree, stats=stats)
        if not tree.store_parent_pointers:
            raise ValueError(
                "LocalizedBottomUpUpdate requires a tree built with "
                "store_parent_pointers=True (the strategy relies on leaf-level "
                "parent pointers)"
            )
        self.hash_index = hash_index
        self.params = params if params is not None else TuningParameters.paper_defaults()

    # ------------------------------------------------------------------
    # Lifecycle (hot swap)
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Backfill leaf parent pointers with one tree sweep.

        A tree that was *built* for LBU already maintains the pointers, so
        the sweep finds every leaf correct and writes nothing.  A live index
        switching into LBU arrives with stale (or absent) pointers: each
        stale leaf is rewritten once, and those leaf writes are charged —
        they are the I/O cost of the switch.  The tree keeps its
        construction-time leaf capacity either way: the paper's one-slot
        parent-pointer charge models trees built for LBU, not a live switch.
        """
        self.tree.store_parent_pointers = True
        for node, parent_page_id in self.tree.iter_nodes():
            if node.level == 0 and node.parent_page_id != parent_page_id:
                node.parent_page_id = parent_page_id
                self.tree.write_node(node)

    def uninstall(self) -> None:
        """Stop parent-pointer maintenance.

        The pointers already written stay in the pages (they are ignored,
        and validation only checks them while the flag is on); a later
        switch back into LBU re-sweeps whatever went stale in between.
        """
        self.tree.store_parent_pointers = False

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def _update(self, oid: int, old_location: Point, new_location: Point) -> UpdateOutcome:
        # Locate the leaf through the secondary object-ID index.
        leaf_page = self.hash_index.lookup(oid)
        if leaf_page is None:
            self.tree.insert(oid, new_location)
            return UpdateOutcome.INSERTED_NEW
        leaf = self.tree.read_node(leaf_page)
        entry = leaf.find_entry(oid)
        if entry is None:
            return self._top_down_update(oid, old_location, new_location)

        # 1. In place: the new location lies within the (possibly enlarged) leaf MBR.
        if leaf.effective_mbr().contains_point(new_location):
            entry.rect = Rect.from_point(new_location)
            self.tree.write_node(leaf)
            return UpdateOutcome.IN_PLACE

        # Retrieve the parent of the leaf node (through the parent pointer).
        if leaf.parent_page_id is None or not self.tree.disk.contains(
            leaf.parent_page_id
        ):
            # The leaf is the root (or its parent pointer dangles after a
            # restructure): there is nothing to enlarge against and no
            # siblings to shift to; repair top-down.
            return self._top_down_update(oid, old_location, new_location)
        parent = self.tree.read_node(leaf.parent_page_id)
        parent_entry = parent.find_entry(leaf.page_id)
        if parent_entry is None:
            # Parent pointer is stale (should not happen when maintenance is
            # correct); fall back to the safe path.
            return self._top_down_update(oid, old_location, new_location)

        # 2. Enlarge the leaf MBR by ε in all directions, bounded by the parent MBR.
        parent_mbr = parent.mbr()
        enlarged = leaf.effective_mbr().expanded(self.params.epsilon)
        if parent_mbr.contains_rect(enlarged) and enlarged.contains_point(new_location):
            entry.rect = Rect.from_point(new_location)
            leaf.stored_mbr = enlarged
            self.tree.write_node(leaf)
            parent_entry.rect = enlarged
            self.tree.write_node(parent)
            return UpdateOutcome.EXTENDED

        # 3. Removing the object must not underflow the leaf; otherwise the
        #    reorganisation belongs to the top-down machinery.
        if len(leaf) - 1 < self.tree.min_leaf_entries:
            return self._top_down_update(oid, old_location, new_location)

        removed = leaf.remove_entry(oid)
        assert removed is not None
        self.tree.write_node(leaf)

        # 3b. Shift to a sibling whose MBR contains the new location and which
        #     is not full.  Without the summary structure every candidate has
        #     to be read from disk to check fullness.
        sibling = self._find_sibling(parent, exclude_page=leaf.page_id, location=new_location)
        if sibling is not None:
            sibling.add_entry(removed.__class__(Rect.from_point(new_location), oid))
            self.tree.write_node(sibling)
            return UpdateOutcome.SIBLING_SHIFT

        # 4. Standard R-tree insert from the root (the object is already deleted).
        self.tree.insert(oid, new_location)
        self.tree.size -= 1  # insert() counts a new object; this one was only moved
        return UpdateOutcome.TOP_DOWN

    # ------------------------------------------------------------------
    # Batch execution (group-by-leaf)
    # ------------------------------------------------------------------
    def apply_group(
        self, leaf_page_id: int, group: Sequence[BatchUpdate]
    ) -> List[BatchUpdate]:
        """Group pass: shared in-place sweep plus **one** ε-enlargement.

        The per-operation path reads the parent (through the leaf's parent
        pointer) and enlarges the leaf MBR once per escaping update; the
        group pass reads the parent once, enlarges once, and absorbs every
        group member the enlarged MBR covers — then issues a single leaf
        write and a single deferred parent-MBR adjustment.  Sibling shifts
        and top-down repairs stay per-operation (they are the rare classes)
        and are returned as residuals.
        """
        leaf = self.tree.read_node(leaf_page_id)
        residuals, dirty = self._apply_in_place(leaf, group)

        if (
            residuals
            and leaf.entries
            and leaf.parent_page_id is not None
            and self.tree.disk.contains(leaf.parent_page_id)
        ):
            parent = self.tree.read_node(leaf.parent_page_id)
            parent_entry = parent.find_entry(leaf.page_id)
            if parent_entry is not None:
                enlarged = leaf.effective_mbr().expanded(self.params.epsilon)
                if parent.mbr().contains_rect(enlarged):
                    still: List[BatchUpdate] = []
                    extended = False
                    for request in residuals:
                        entry = leaf.find_entry(request.oid)
                        if entry is not None and enlarged.contains_point(
                            request.new_location
                        ):
                            entry.rect = Rect.from_point(request.new_location)
                            extended = True
                            self.record_outcome(UpdateOutcome.EXTENDED)
                        else:
                            still.append(request)
                    if extended:
                        leaf.stored_mbr = enlarged
                        dirty = True
                        self.tree.adjust_upward(parent, [leaf])
                    residuals = still

        if dirty:
            self.tree.write_node(leaf)
        self._charge_batch_probes(len(group) - len(residuals))
        return residuals

    # ------------------------------------------------------------------
    # Lock-scope prediction (concurrency engine)
    # ------------------------------------------------------------------
    def lock_scope(
        self, oid: int, old_location: Point, new_location: Point
    ) -> List[GranuleLockRequest]:
        """Leaf, sibling-candidate and adjusted-parent granules only.

        Follows Algorithm 1's ladder over uncharged peeks: an in-place
        update locks just the object's leaf; an ε-enlargement additionally
        intends on the parent granule (its entry rectangle is rewritten); a
        sibling shift adds exclusive locks on the candidate sibling leaves
        whose region covers the new position.  Only when every local class
        is infeasible (root leaf, stale pointer, underflow hazard) does the
        scope widen to the base top-down set — the paper's Section 3.2.2
        asymmetry, expressed as lock footprints.
        """
        leaf_page = self.hash_index.peek(oid)
        if leaf_page is None:
            return self.insert_lock_scope(new_location)
        leaf = self.tree.peek_node(leaf_page)
        if leaf.find_entry(oid) is None:
            return super().lock_scope(oid, old_location, new_location)

        requests = [GranuleLockRequest(leaf_page, LockMode.EXCLUSIVE)]
        tree_intention = GranuleLockRequest(
            TREE_GRANULE, LockMode.INTENTION_EXCLUSIVE
        )
        if len(leaf) and leaf.effective_mbr().contains_point(new_location):
            requests.append(tree_intention)
            return merge_requests(requests)

        if leaf.parent_page_id is None or not self.tree.disk.contains(
            leaf.parent_page_id
        ):
            return super().lock_scope(oid, old_location, new_location)
        parent = self.tree.peek_node(leaf.parent_page_id)
        if parent.find_entry(leaf_page) is None:
            return super().lock_scope(oid, old_location, new_location)
        requests.append(
            GranuleLockRequest(parent.page_id, LockMode.INTENTION_EXCLUSIVE)
        )

        enlarged = (
            leaf.effective_mbr().expanded(self.params.epsilon)
            if len(leaf)
            else None
        )
        if (
            enlarged is not None
            and parent.mbr().contains_rect(enlarged)
            and enlarged.contains_point(new_location)
        ):
            requests.append(tree_intention)
            return merge_requests(requests)

        if len(leaf) - 1 < self.tree.min_leaf_entries:
            return super().lock_scope(oid, old_location, new_location)

        candidates = [
            page
            for page in parent.contains_point_children(new_location)
            if page != leaf_page
        ]
        if candidates:
            requests.extend(
                GranuleLockRequest(page, LockMode.EXCLUSIVE) for page in candidates
            )
        else:
            # Bottom-up removal followed by a root insert of the survivor.
            requests.extend(self.insert_lock_scope(new_location))
        requests.append(tree_intention)
        return merge_requests(requests)

    def group_lock_scope(
        self, leaf_page_id: int, group: Sequence[BatchUpdate]
    ) -> List[GranuleLockRequest]:
        """Leaf exclusively, parent granule with intent (one shared ε-pass)."""
        requests = super().group_lock_scope(leaf_page_id, group)
        if not self.tree.disk.contains(leaf_page_id):
            # The planned leaf was dissolved by an earlier group's residual
            # replay; execution will re-route the members, so the base scope
            # (the stale granule id plus the tree intent) is all that's left
            # to lock.
            return requests
        leaf = self.tree.peek_node(leaf_page_id)
        if leaf.parent_page_id is not None:
            requests.append(
                GranuleLockRequest(leaf.parent_page_id, LockMode.INTENTION_EXCLUSIVE)
            )
        return merge_requests(requests)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _find_sibling(
        self, parent: Node, exclude_page: int, location: Point
    ) -> Optional[Node]:
        """Read candidate siblings until a non-full one containing *location* is found."""
        for candidate_page in parent.contains_point_children(location):
            if candidate_page == exclude_page:
                continue
            sibling = self.tree.read_node(candidate_page)
            if sibling.is_full(self.tree.leaf_capacity):
                continue
            return sibling
        return None
