"""TD — the traditional top-down update (the paper's baseline).

"A traditional R-tree update first carries out a top-down search for the
leaf node with the index entry of the object, deletes the entry, and then
executes another and separate top-down search for the optimal location in
which to insert the entry for the new object" (Section 3).

The strategy therefore costs two descents per update: the delete descent may
follow several partial paths because sibling MBRs overlap, and both the
delete and the insert may trigger node splits and re-insertion of entries.

Under the batch engine TD inherits the base group pass: updates grouped on
one leaf are carried out in place with a single leaf read/write, and only
the escapees pay the two traversals — the batch planner locates leaves
through the facade's in-memory hash index without charging probes, since
per-operation TD never pays for secondary-index access.
"""

from __future__ import annotations

from repro.geometry import Point
from repro.update.base import UpdateOutcome, UpdateStrategy


class TopDownUpdate(UpdateStrategy):
    """Delete top-down, then insert top-down."""

    name = "TD"

    def _update(self, oid: int, old_location: Point, new_location: Point) -> UpdateOutcome:
        return self._top_down_update(oid, old_location, new_location)
