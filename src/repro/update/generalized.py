"""GBU — Generalized Bottom-Up Update (Algorithm 2).

GBU keeps the R-tree structure untouched and drives every decision from the
main-memory summary structure (Section 3.2):

* the **root check** and the **parent MBR bound** come from the direct access
  table, not from disk;
* the **directional ε-extension** (``iExtendMBR``, Algorithm 4) enlarges the
  leaf MBR only towards the object's movement and only as far as needed;
* **sibling shifting** consults the leaf bit vector so full siblings are
  skipped without reading them, and *piggybacks* other objects of the source
  leaf that also fit in the chosen sibling, tightening the source MBR;
* when neither works, **FindParent** (Algorithm 3) locates — entirely in
  memory — the lowest ancestor whose MBR covers the new position (bounded by
  the level threshold ℓ) and the object is re-inserted below it;
* a **distance threshold** D decides whether extension or shifting is
  attempted first (fast movers shift first).

Only when the new position falls outside the root MBR, or when removing the
object would underflow its leaf, does GBU hand the update to the traditional
top-down machinery.

GBU also answers window queries through the summary structure
(:func:`repro.summary.query.summary_guided_range_query`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.concurrency.dgl import TREE_GRANULE, GranuleLockRequest, merge_requests
from repro.concurrency.locks import LockMode
from repro.geometry import Point, Rect
from repro.rtree.node import Entry, Node
from repro.rtree.tree import RTree
from repro.secondary import ObjectHashIndex
from repro.storage.stats import IOStatistics
from repro.summary import (
    SummaryStructure,
    iter_summary_guided_range_query,
    summary_guided_range_query,
)
from repro.update.base import BatchUpdate, UpdateOutcome, UpdateStrategy
from repro.update.params import TuningParameters


class GeneralizedBottomUpUpdate(UpdateStrategy):
    """Algorithm 2 of the paper, with the Section 3.2.1 optimisations."""

    name = "GBU"

    def __init__(
        self,
        tree: RTree,
        hash_index: ObjectHashIndex,
        summary: SummaryStructure,
        params: Optional[TuningParameters] = None,
        stats: Optional[IOStatistics] = None,
        use_summary_for_queries: bool = True,
    ) -> None:
        super().__init__(tree, stats=stats)
        self.hash_index = hash_index
        self.summary = summary
        self.params = params if params is not None else TuningParameters.paper_defaults()
        self.use_summary_for_queries = use_summary_for_queries

    # ------------------------------------------------------------------
    # Lifecycle (hot swap)
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Attach the summary structure to the live tree.

        ``SummaryStructure.build_from_tree`` already rebuilds and registers
        the summary when the factory created it, so the common paths find it
        attached and do nothing.  A summary handed in detached (a restored
        checkpoint, a re-install after uninstall) is rebuilt from the live
        tree before registering — it must reflect the tree as of *now*.
        """
        if self.summary not in self.tree.observers:
            self.summary.rebuild_from_tree()
            self.tree.register_observer(self.summary)

    def uninstall(self) -> None:
        """Detach the summary observer; the structure is dropped with the strategy."""
        self.tree.unregister_observer(self.summary)

    # ------------------------------------------------------------------
    # Queries (summary-assisted, Section 3.2)
    # ------------------------------------------------------------------
    def range_query(self, window: Rect) -> List[int]:
        if self.use_summary_for_queries:
            return summary_guided_range_query(self.tree, self.summary, window)
        return self.tree.range_query(window)

    def iter_range_query(self, window: Rect) -> Iterator[int]:
        if self.use_summary_for_queries:
            return iter_summary_guided_range_query(self.tree, self.summary, window)
        return self.tree.iter_range_query(window)

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def _update(self, oid: int, old_location: Point, new_location: Point) -> UpdateOutcome:
        # Root check: if the new location falls outside the root MBR the tree
        # has to grow, which is inherently a global reorganisation.
        root_mbr = self.summary.root_mbr()
        if root_mbr is not None and not root_mbr.contains_point(new_location):
            return self._top_down_update(oid, old_location, new_location)

        # Locate the leaf through the secondary object-ID index.
        leaf_page = self.hash_index.lookup(oid)
        if leaf_page is None:
            self.tree.insert(oid, new_location)
            return UpdateOutcome.INSERTED_NEW
        leaf = self.tree.read_node(leaf_page)
        entry = leaf.find_entry(oid)
        if entry is None:
            return self._top_down_update(oid, old_location, new_location)

        # In place: the new location lies within the leaf MBR.
        if leaf.effective_mbr().contains_point(new_location):
            entry.rect = Rect.from_point(new_location)
            self.tree.write_node(leaf)
            return UpdateOutcome.IN_PLACE

        parent_entry = self.summary.parent_entry_of_leaf(leaf_page)
        parent_mbr = parent_entry.mbr if parent_entry is not None else None

        # Distance threshold D: fast movers try a sibling before extending.
        distance_moved = old_location.distance_to(new_location)
        fast_mover = distance_moved > self.params.distance_threshold

        attempts = ("sibling", "extend") if fast_mover else ("extend", "sibling")
        for attempt in attempts:
            if attempt == "extend":
                outcome = self._try_extend(leaf, entry, new_location, parent_mbr, parent_entry)
            else:
                outcome = self._try_sibling_shift(leaf, oid, new_location, parent_entry)
            if outcome is not None:
                return outcome

        # Neither a local extension nor a sibling shift worked: ascend.
        return self._ascend_and_reinsert(leaf, oid, old_location, new_location)

    # ------------------------------------------------------------------
    # Batch execution (group-by-leaf)
    # ------------------------------------------------------------------
    def apply_group(
        self, leaf_page_id: int, group: Sequence[BatchUpdate]
    ) -> List[BatchUpdate]:
        """Group pass: every summary-guided class at group granularity.

        Mirrors Algorithm 2 but executes each class once per *group* instead
        of once per update:

        1. the shared in-place sweep (one leaf read for the whole group);
        2. **batched iExtendMBR** — the directional extension grows a single
           running MBR towards each escaping position, bounded by the parent
           MBR taken from the direct access table, so k extensions cost the
           same leaf write as one;
        3. **batched sibling shifting** — escapees are routed to non-full
           siblings (bit vector, no disk probe), each chosen sibling is read
           and written once regardless of how many objects it absorbs
           (:meth:`RTree.add_entries` / :meth:`RTree.remove_entries`);
        4. one deferred ancestor-MBR pass (:meth:`RTree.adjust_upward`)
           refreshes the parent's entries for the leaf and every touched
           sibling with a single parent write.

        Piggybacking is not attempted here: the group pass already moves
        every movable object of the leaf in bulk, which is the same
        redistribution piggybacking approximates one update at a time.
        Updates that none of the classes absorb (root-MBR escapes, underflow
        hazards, ascents) are returned as residuals for the per-operation
        path.
        """
        leaf = self.tree.read_node(leaf_page_id)
        residuals, dirty = self._apply_in_place(leaf, group)

        parent_entry = self.summary.parent_entry_of_leaf(leaf_page_id)
        parent_mbr = parent_entry.mbr if parent_entry is not None else None
        parent_node: Optional[Node] = None
        touched: List[Node] = [leaf]
        needs_adjust = False  # in-place-only groups never touch the parent

        # 2. Batched directional extension.
        if residuals and leaf.entries:
            running = leaf.effective_mbr()
            still: List[BatchUpdate] = []
            extended = False
            for request in residuals:
                entry = leaf.find_entry(request.oid)
                if entry is None:
                    still.append(request)
                    continue
                candidate = running.extended_towards(
                    request.new_location, self.params.epsilon, bound=parent_mbr
                )
                if candidate.contains_point(request.new_location):
                    entry.rect = Rect.from_point(request.new_location)
                    running = candidate
                    extended = True
                    self.record_outcome(UpdateOutcome.EXTENDED)
                else:
                    still.append(request)
            if extended:
                leaf.stored_mbr = running
                dirty = True
                needs_adjust = True
            residuals = still

        # 3. Batched sibling shifting (bit vector plans, one read per sibling).
        if residuals and parent_entry is not None:
            is_full = self.summary.leaf_bits.is_full
            candidates = [
                page
                for page in parent_entry.child_page_ids
                if page != leaf.page_id and not is_full(page)
            ]
            if candidates:
                parent_node = self.tree.read_node(parent_entry.page_id)
                residuals, shifted = self._shift_group(
                    leaf, parent_node, candidates, residuals
                )
                dirty = dirty or bool(shifted)
                needs_adjust = needs_adjust or bool(shifted)
                touched.extend(shifted)

        if dirty:
            self.tree.write_node(leaf)

        # 4. One deferred ancestor-MBR adjustment pass (only when an
        # extension or shift actually changed an effective MBR: a purely
        # in-place group must not pay parent I/O the per-op path never pays).
        if needs_adjust and parent_entry is not None:
            if parent_node is None:
                parent_node = self.tree.read_node(parent_entry.page_id)
            self.tree.adjust_upward(
                parent_node,
                touched,
                ancestor_path=self.summary.path_from_root(parent_entry.page_id),
            )

        self._charge_batch_probes(len(group) - len(residuals))
        return residuals

    def _shift_group(
        self,
        leaf: Node,
        parent_node: Node,
        candidates: Sequence[int],
        requests: Sequence[BatchUpdate],
    ) -> Tuple[List[BatchUpdate], List[Node]]:
        """Move as many *requests* as possible into sibling leaves in bulk.

        Returns ``(residuals, touched_siblings)``.  Each chosen sibling is
        read once, receives every object routed to it with one
        :meth:`RTree.add_entries`, and is written once.  The source leaf is
        never drained below its minimum fill, and sibling MBRs never grow:
        objects are routed only to siblings whose parent entry already
        contains the new position.
        """
        removable = len(leaf) - self.tree.min_leaf_entries
        candidate_set = frozenset(candidates)
        siblings: Dict[int, Node] = {}
        planned: Dict[int, int] = {}  # sibling page -> objects routed so far
        moves: Dict[int, List[BatchUpdate]] = {}
        residuals: List[BatchUpdate] = []
        for request in requests:
            if removable <= 0 or leaf.find_entry(request.oid) is None:
                residuals.append(request)
                continue
            target: Optional[int] = None
            for page in parent_node.contains_point_children(request.new_location):
                if page not in candidate_set or page == leaf.page_id:
                    continue
                if page not in siblings:
                    siblings[page] = self.tree.read_node(page)
                    planned[page] = 0
                room = self.tree.leaf_capacity - len(siblings[page].entries)
                if planned[page] < room:
                    target = page
                    break
            if target is None:
                residuals.append(request)
                continue
            moves.setdefault(target, []).append(request)
            planned[target] += 1
            removable -= 1

        touched: List[Node] = []
        for page, routed in moves.items():
            sibling = siblings[page]
            entries = self.tree.remove_entries(leaf, [r.oid for r in routed])
            for entry, request in zip(entries, routed):
                entry.rect = Rect.from_point(request.new_location)
            self.tree.add_entries(sibling, entries)
            self.tree.write_node(sibling)
            touched.append(sibling)
            for _ in routed:
                self.record_outcome(UpdateOutcome.SIBLING_SHIFT)
        return residuals, touched

    # ------------------------------------------------------------------
    # Lock-scope prediction (concurrency engine)
    # ------------------------------------------------------------------
    def lock_scope(
        self, oid: int, old_location: Point, new_location: Point
    ) -> List[GranuleLockRequest]:
        """Predict Algorithm 2's footprint entirely from the summary structure.

        The decision ladder is replayed in memory (root check, in-place
        containment, iExtendMBR feasibility, bit-vector sibling candidates,
        FindParent ascent) and the scope of the first class that will fire
        is returned: the leaf granule always, the parent granule with intent
        when its entry is adjusted, candidate sibling granules exclusively
        for a shift, and the ancestor path with intent plus the re-insert
        target for an ascent.  Nothing here reads a page with charged I/O —
        the same property that makes GBU's updates cheap makes its lock
        scopes predictable.
        """
        root_mbr = self.summary.root_mbr()
        if root_mbr is None or not root_mbr.contains_point(new_location):
            return super().lock_scope(oid, old_location, new_location)
        leaf_page = self.hash_index.peek(oid)
        if leaf_page is None:
            return self.insert_lock_scope(new_location)
        leaf = self.tree.peek_node(leaf_page)
        if leaf.find_entry(oid) is None:
            return super().lock_scope(oid, old_location, new_location)

        requests = [GranuleLockRequest(leaf_page, LockMode.EXCLUSIVE)]
        tree_intention = GranuleLockRequest(
            TREE_GRANULE, LockMode.INTENTION_EXCLUSIVE
        )
        if len(leaf) and leaf.effective_mbr().contains_point(new_location):
            requests.append(tree_intention)
            return merge_requests(requests)

        parent_entry = self.summary.parent_entry_of_leaf(leaf_page)
        parent_mbr = parent_entry.mbr if parent_entry is not None else None
        if parent_entry is not None:
            requests.append(
                GranuleLockRequest(parent_entry.page_id, LockMode.INTENTION_EXCLUSIVE)
            )

        extend_ok = False
        if len(leaf):
            candidate = leaf.effective_mbr().extended_towards(
                new_location, self.params.epsilon, bound=parent_mbr
            )
            extend_ok = candidate.contains_point(new_location)

        can_remove = len(leaf) - 1 >= self.tree.min_leaf_entries
        shift_candidates: List[int] = []
        if parent_entry is not None and can_remove:
            parent_node = self.tree.peek_node(parent_entry.page_id)
            is_full = self.summary.leaf_bits.is_full
            eligible = {
                page
                for page in parent_entry.child_page_ids
                if page != leaf_page and not is_full(page)
            }
            shift_candidates = [
                page
                for page in parent_node.contains_point_children(new_location)
                if page in eligible
            ]

        fast_mover = (
            old_location.distance_to(new_location) > self.params.distance_threshold
        )
        shift_first = fast_mover and shift_candidates
        if shift_first or (not extend_ok and shift_candidates):
            requests.extend(
                GranuleLockRequest(page, LockMode.EXCLUSIVE)
                for page in shift_candidates
            )
        elif extend_ok:
            pass  # leaf X + parent intent cover the directional extension
        else:
            # Neither local class applies: ascend (or repair top-down).
            if not can_remove:
                return super().lock_scope(oid, old_location, new_location)
            requests.extend(self._ascent_lock_scope(leaf_page, new_location))
        requests.append(tree_intention)
        return merge_requests(requests)

    def _ascent_lock_scope(
        self, leaf_page: int, new_location: Point
    ) -> List[GranuleLockRequest]:
        """Granules of a FindParent ascent: the path with intent, the target X."""
        level_threshold = self.params.level_threshold
        if level_threshold is None:
            level_threshold = max(self.tree.height - 1, 0)
        if level_threshold < 1:
            ancestor_page, ancestor_path = None, []
        else:
            ancestor_page, ancestor_path = self.summary.find_parent(
                leaf_page, new_location, level_threshold=level_threshold
            )
        if ancestor_page is None:
            ancestor_page, ancestor_path = self.tree.root_page_id, []
        requests = [
            GranuleLockRequest(page, LockMode.INTENTION_EXCLUSIVE)
            for page in list(ancestor_path) + [ancestor_page]
        ]
        target = self.tree.predict_insert_leaf(
            Rect.from_point(new_location), start_page_id=ancestor_page
        )
        requests.append(GranuleLockRequest(target, LockMode.EXCLUSIVE))
        return requests

    def group_lock_scope(
        self, leaf_page_id: int, group: Sequence[BatchUpdate]
    ) -> List[GranuleLockRequest]:
        """Leaf X, parent intent, plus shift-candidate siblings for escapees.

        The batched sibling-shift stage routes members whose new position
        escapes the leaf into non-full siblings, so those sibling granules
        are part of the group's footprint; the bit vector and the direct
        access table supply them without disk probes, exactly as in the
        per-operation path.
        """
        requests = super().group_lock_scope(leaf_page_id, group)
        if not self.tree.disk.contains(leaf_page_id):
            # Planned leaf dissolved before this group was dispatched; the
            # members will be re-routed at execution time.
            return requests
        parent_entry = self.summary.parent_entry_of_leaf(leaf_page_id)
        if parent_entry is None:
            return merge_requests(requests)
        requests.append(
            GranuleLockRequest(parent_entry.page_id, LockMode.INTENTION_EXCLUSIVE)
        )
        leaf = self.tree.peek_node(leaf_page_id)
        leaf_mbr = leaf.effective_mbr() if len(leaf) else None
        escaping = [
            request.new_location
            for request in group
            if leaf_mbr is None or not leaf_mbr.contains_point(request.new_location)
        ]
        if escaping:
            parent_node = self.tree.peek_node(parent_entry.page_id)
            is_full = self.summary.leaf_bits.is_full
            eligible = {
                page
                for page in parent_entry.child_page_ids
                if page != leaf_page_id and not is_full(page)
            }
            covering: set = set()
            for location in escaping:
                covering.update(parent_node.contains_point_children(location))
            requests.extend(
                GranuleLockRequest(page, LockMode.EXCLUSIVE)
                for page in parent_node.child_ids()
                if page in eligible and page in covering
            )
        return merge_requests(requests)

    # ------------------------------------------------------------------
    # iExtendMBR (Algorithm 4)
    # ------------------------------------------------------------------
    def _try_extend(
        self,
        leaf: Node,
        entry: Entry,
        new_location: Point,
        parent_mbr: Optional[Rect],
        parent_entry,
    ) -> Optional[UpdateOutcome]:
        """Directionally extend the leaf MBR; return the outcome or ``None``."""
        current_mbr = leaf.effective_mbr()
        extended = current_mbr.extended_towards(
            new_location, self.params.epsilon, bound=parent_mbr
        )
        if not extended.contains_point(new_location):
            return None

        entry.rect = Rect.from_point(new_location)
        leaf.stored_mbr = extended
        self.tree.write_node(leaf)

        # The leaf MBR lives in the parent's entry: it must be enlarged too so
        # that queries descending through the parent still reach the object.
        if parent_entry is not None:
            parent_node = self.tree.read_node(parent_entry.page_id)
            child_entry = parent_node.find_entry(leaf.page_id)
            if child_entry is not None and not child_entry.rect.contains_rect(extended):
                child_entry.rect = child_entry.rect.union(extended)
                self.tree.write_node(parent_node)
        return UpdateOutcome.EXTENDED

    # ------------------------------------------------------------------
    # Sibling shift with piggybacking (Section 3.2.1, optimisation 4)
    # ------------------------------------------------------------------
    def _try_sibling_shift(
        self,
        leaf: Node,
        oid: int,
        new_location: Point,
        parent_entry,
    ) -> Optional[UpdateOutcome]:
        """Move the object to a suitable sibling leaf; return the outcome or ``None``."""
        if parent_entry is None:
            return None
        # Removing the object must not underflow the leaf.
        if len(leaf) - 1 < self.tree.min_leaf_entries:
            return None

        # The bit vector identifies non-full siblings without disk access, but
        # the sibling MBRs live in the parent node, which has to be read.
        is_full = self.summary.leaf_bits.is_full
        candidate_pages = {
            page
            for page in parent_entry.child_page_ids
            if page != leaf.page_id and not is_full(page)
        }
        if not candidate_pages:
            return None

        parent_node = self.tree.read_node(parent_entry.page_id)
        chosen_page: Optional[int] = None
        for page in parent_node.contains_point_children(new_location):
            if page in candidate_pages:
                chosen_page = page
                break
        if chosen_page is None:
            return None

        sibling = self.tree.read_node(chosen_page)
        if sibling.is_full(self.tree.leaf_capacity):
            # The bit vector can be momentarily conservative the other way
            # only; a full sibling here means another update filled it first.
            return None

        removed = leaf.discard_entry(oid)
        assert removed
        sibling.add_entry(Entry(Rect.from_point(new_location), oid))

        # Piggyback other objects of the source leaf that also fit in the
        # sibling's MBR, redistributing objects between the two leaves.
        if self.params.piggyback:
            self._piggyback(leaf, sibling)

        # Tightening the source leaf's MBR in the parent (below) voids any
        # ε-slack; decide before the leaf write so the page image matches.
        source_entry = parent_node.find_entry(leaf.page_id)
        tightened: Optional[Rect] = None
        if source_entry is not None and len(leaf):
            candidate = leaf.mbr()
            if source_entry.rect != candidate:
                tightened = candidate
                leaf.stored_mbr = None

        self.tree.write_node(leaf)
        self.tree.write_node(sibling)

        # Tighten the source leaf's MBR in the parent to reduce overlap.
        if source_entry is not None and tightened is not None:
            source_entry.rect = tightened
            self.tree.write_node(parent_node)
        return UpdateOutcome.SIBLING_SHIFT

    def _piggyback(self, source: Node, sibling: Node) -> None:
        """Move further objects from *source* into *sibling* when they fit.

        Objects are eligible when their position lies inside the sibling's
        current MBR (so the sibling MBR does not grow), the sibling has spare
        capacity, and the source stays above its minimum fill.
        """
        # The containment test never changes as entries move (the sibling MBR
        # is fixed and moves only shrink the source), so a single batch scan
        # of the pristine source finds every eligible entry; the move budget
        # caps how many of them (in entry order) actually transfer.
        budget = min(
            self.params.max_piggyback_objects,
            self.tree.leaf_capacity - len(sibling),
            len(source) - self.tree.min_leaf_entries,
        )
        if budget <= 0:
            return
        sxmin, symin, sxmax, symax = sibling.mbr().as_tuple()
        eligible = source.contained_entry_indices(sxmin, symin, sxmax, symax)
        # Each pop shifts the remaining (ascending) indices left by one.
        for moved, index in enumerate(eligible[:budget]):
            sibling.add_entry(source.pop_entry_at(index - moved))

    # ------------------------------------------------------------------
    # FindParent ascent (Algorithm 3)
    # ------------------------------------------------------------------
    def _ascend_and_reinsert(
        self, leaf: Node, oid: int, old_location: Point, new_location: Point
    ) -> UpdateOutcome:
        """Delete bottom-up and re-insert below the lowest covering ancestor.

        When the level threshold forbids any ascent (ℓ = 0, the paper's
        "optimal localized bottom-up" reduction) or no ancestor within the
        threshold covers the new position, the object is still deleted
        bottom-up and then re-inserted with a standard top-down insert from
        the root — the bottom-up deletion is what distinguishes this from the
        full top-down update, which additionally pays the FindLeaf descent.
        """
        level_threshold = self.params.level_threshold
        if level_threshold is None:
            level_threshold = max(self.tree.height - 1, 0)

        # Removing the object must not underflow the leaf (Algorithm 2 issues
        # a top-down update in that case).
        if len(leaf) - 1 < self.tree.min_leaf_entries:
            return self._top_down_update(oid, old_location, new_location)

        if level_threshold < 1:
            ancestor_page, ancestor_path = None, []
        else:
            ancestor_page, ancestor_path = self.summary.find_parent(
                leaf.page_id, new_location, level_threshold=level_threshold
            )

        ascended = ancestor_page is not None
        if ancestor_page is None:
            # Global re-insert: start the insert descent at the root.
            ancestor_page, ancestor_path = self.tree.root_page_id, []

        removed = leaf.discard_entry(oid)
        assert removed
        self.tree.write_node(leaf)
        self.tree.size -= 1  # insert_at_subtree() below counts the object again

        self.tree.insert_at_subtree(
            oid, new_location, anchor_page_id=ancestor_page, ancestor_path=ancestor_path
        )
        return UpdateOutcome.ASCENDED if ascended else UpdateOutcome.TOP_DOWN
