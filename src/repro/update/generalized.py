"""GBU — Generalized Bottom-Up Update (Algorithm 2).

GBU keeps the R-tree structure untouched and drives every decision from the
main-memory summary structure (Section 3.2):

* the **root check** and the **parent MBR bound** come from the direct access
  table, not from disk;
* the **directional ε-extension** (``iExtendMBR``, Algorithm 4) enlarges the
  leaf MBR only towards the object's movement and only as far as needed;
* **sibling shifting** consults the leaf bit vector so full siblings are
  skipped without reading them, and *piggybacks* other objects of the source
  leaf that also fit in the chosen sibling, tightening the source MBR;
* when neither works, **FindParent** (Algorithm 3) locates — entirely in
  memory — the lowest ancestor whose MBR covers the new position (bounded by
  the level threshold ℓ) and the object is re-inserted below it;
* a **distance threshold** D decides whether extension or shifting is
  attempted first (fast movers shift first).

Only when the new position falls outside the root MBR, or when removing the
object would underflow its leaf, does GBU hand the update to the traditional
top-down machinery.

GBU also answers window queries through the summary structure
(:func:`repro.summary.query.summary_guided_range_query`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.geometry import Point, Rect
from repro.rtree.node import Entry, Node
from repro.rtree.tree import RTree
from repro.secondary import ObjectHashIndex
from repro.storage.stats import IOStatistics
from repro.summary import SummaryStructure, summary_guided_range_query
from repro.update.base import UpdateOutcome, UpdateStrategy
from repro.update.params import TuningParameters


class GeneralizedBottomUpUpdate(UpdateStrategy):
    """Algorithm 2 of the paper, with the Section 3.2.1 optimisations."""

    name = "GBU"

    def __init__(
        self,
        tree: RTree,
        hash_index: ObjectHashIndex,
        summary: SummaryStructure,
        params: Optional[TuningParameters] = None,
        stats: Optional[IOStatistics] = None,
        use_summary_for_queries: bool = True,
    ) -> None:
        super().__init__(tree, stats=stats)
        self.hash_index = hash_index
        self.summary = summary
        self.params = params if params is not None else TuningParameters.paper_defaults()
        self.use_summary_for_queries = use_summary_for_queries

    # ------------------------------------------------------------------
    # Queries (summary-assisted, Section 3.2)
    # ------------------------------------------------------------------
    def range_query(self, window: Rect) -> List[int]:
        if self.use_summary_for_queries:
            return summary_guided_range_query(self.tree, self.summary, window)
        return self.tree.range_query(window)

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def _update(self, oid: int, old_location: Point, new_location: Point) -> UpdateOutcome:
        # Root check: if the new location falls outside the root MBR the tree
        # has to grow, which is inherently a global reorganisation.
        root_mbr = self.summary.root_mbr()
        if root_mbr is not None and not root_mbr.contains_point(new_location):
            return self._top_down_update(oid, old_location, new_location)

        # Locate the leaf through the secondary object-ID index.
        leaf_page = self.hash_index.lookup(oid)
        if leaf_page is None:
            self.tree.insert(oid, new_location)
            return UpdateOutcome.INSERTED_NEW
        leaf = self.tree.read_node(leaf_page)
        entry = leaf.find_entry(oid)
        if entry is None:
            return self._top_down_update(oid, old_location, new_location)

        # In place: the new location lies within the leaf MBR.
        if leaf.effective_mbr().contains_point(new_location):
            entry.rect = Rect.from_point(new_location)
            self.tree.write_node(leaf)
            return UpdateOutcome.IN_PLACE

        parent_entry = self.summary.parent_entry_of_leaf(leaf_page)
        parent_mbr = parent_entry.mbr if parent_entry is not None else None

        # Distance threshold D: fast movers try a sibling before extending.
        distance_moved = old_location.distance_to(new_location)
        fast_mover = distance_moved > self.params.distance_threshold

        attempts = ("sibling", "extend") if fast_mover else ("extend", "sibling")
        for attempt in attempts:
            if attempt == "extend":
                outcome = self._try_extend(leaf, entry, new_location, parent_mbr, parent_entry)
            else:
                outcome = self._try_sibling_shift(leaf, oid, new_location, parent_entry)
            if outcome is not None:
                return outcome

        # Neither a local extension nor a sibling shift worked: ascend.
        return self._ascend_and_reinsert(leaf, oid, old_location, new_location)

    # ------------------------------------------------------------------
    # iExtendMBR (Algorithm 4)
    # ------------------------------------------------------------------
    def _try_extend(
        self,
        leaf: Node,
        entry: Entry,
        new_location: Point,
        parent_mbr: Optional[Rect],
        parent_entry,
    ) -> Optional[UpdateOutcome]:
        """Directionally extend the leaf MBR; return the outcome or ``None``."""
        current_mbr = leaf.effective_mbr()
        extended = current_mbr.extended_towards(
            new_location, self.params.epsilon, bound=parent_mbr
        )
        if not extended.contains_point(new_location):
            return None

        entry.rect = Rect.from_point(new_location)
        leaf.stored_mbr = extended
        self.tree.write_node(leaf)

        # The leaf MBR lives in the parent's entry: it must be enlarged too so
        # that queries descending through the parent still reach the object.
        if parent_entry is not None:
            parent_node = self.tree.read_node(parent_entry.page_id)
            child_entry = parent_node.find_entry(leaf.page_id)
            if child_entry is not None and not child_entry.rect.contains_rect(extended):
                child_entry.rect = child_entry.rect.union(extended)
                self.tree.write_node(parent_node)
        return UpdateOutcome.EXTENDED

    # ------------------------------------------------------------------
    # Sibling shift with piggybacking (Section 3.2.1, optimisation 4)
    # ------------------------------------------------------------------
    def _try_sibling_shift(
        self,
        leaf: Node,
        oid: int,
        new_location: Point,
        parent_entry,
    ) -> Optional[UpdateOutcome]:
        """Move the object to a suitable sibling leaf; return the outcome or ``None``."""
        if parent_entry is None:
            return None
        # Removing the object must not underflow the leaf.
        if len(leaf.entries) - 1 < self.tree.min_leaf_entries:
            return None

        # The bit vector identifies non-full siblings without disk access, but
        # the sibling MBRs live in the parent node, which has to be read.
        candidate_pages = [
            page
            for page in parent_entry.child_page_ids
            if page != leaf.page_id and not self.summary.is_leaf_full(page)
        ]
        if not candidate_pages:
            return None

        parent_node = self.tree.read_node(parent_entry.page_id)
        chosen_page: Optional[int] = None
        for child_entry in parent_node.entries:
            if child_entry.child in candidate_pages and child_entry.rect.contains_point(
                new_location
            ):
                chosen_page = child_entry.child
                break
        if chosen_page is None:
            return None

        sibling = self.tree.read_node(chosen_page)
        if sibling.is_full(self.tree.leaf_capacity):
            # The bit vector can be momentarily conservative the other way
            # only; a full sibling here means another update filled it first.
            return None

        removed = leaf.remove_entry(oid)
        assert removed is not None
        sibling.add_entry(Entry(Rect.from_point(new_location), oid))

        # Piggyback other objects of the source leaf that also fit in the
        # sibling's MBR, redistributing objects between the two leaves.
        if self.params.piggyback:
            self._piggyback(leaf, sibling)

        self.tree.write_node(leaf)
        self.tree.write_node(sibling)

        # Tighten the source leaf's MBR in the parent to reduce overlap.
        source_entry = parent_node.find_entry(leaf.page_id)
        if source_entry is not None and leaf.entries:
            tightened = leaf.mbr()
            if source_entry.rect != tightened:
                source_entry.rect = tightened
                leaf.stored_mbr = None
                self.tree.write_node(parent_node)
        return UpdateOutcome.SIBLING_SHIFT

    def _piggyback(self, source: Node, sibling: Node) -> None:
        """Move further objects from *source* into *sibling* when they fit.

        Objects are eligible when their position lies inside the sibling's
        current MBR (so the sibling MBR does not grow), the sibling has spare
        capacity, and the source stays above its minimum fill.
        """
        sibling_mbr = sibling.mbr()
        moved = 0
        index = 0
        while index < len(source.entries):
            if moved >= self.params.max_piggyback_objects:
                break
            if len(sibling.entries) >= self.tree.leaf_capacity:
                break
            if len(source.entries) <= self.tree.min_leaf_entries:
                break
            entry = source.entries[index]
            if sibling_mbr.contains_rect(entry.rect):
                source.entries.pop(index)
                sibling.add_entry(entry)
                moved += 1
                continue
            index += 1

    # ------------------------------------------------------------------
    # FindParent ascent (Algorithm 3)
    # ------------------------------------------------------------------
    def _ascend_and_reinsert(
        self, leaf: Node, oid: int, old_location: Point, new_location: Point
    ) -> UpdateOutcome:
        """Delete bottom-up and re-insert below the lowest covering ancestor.

        When the level threshold forbids any ascent (ℓ = 0, the paper's
        "optimal localized bottom-up" reduction) or no ancestor within the
        threshold covers the new position, the object is still deleted
        bottom-up and then re-inserted with a standard top-down insert from
        the root — the bottom-up deletion is what distinguishes this from the
        full top-down update, which additionally pays the FindLeaf descent.
        """
        level_threshold = self.params.level_threshold
        if level_threshold is None:
            level_threshold = max(self.tree.height - 1, 0)

        # Removing the object must not underflow the leaf (Algorithm 2 issues
        # a top-down update in that case).
        if len(leaf.entries) - 1 < self.tree.min_leaf_entries:
            return self._top_down_update(oid, old_location, new_location)

        if level_threshold < 1:
            ancestor_page, ancestor_path = None, []
        else:
            ancestor_page, ancestor_path = self.summary.find_parent(
                leaf.page_id, new_location, level_threshold=level_threshold
            )

        ascended = ancestor_page is not None
        if ancestor_page is None:
            # Global re-insert: start the insert descent at the root.
            ancestor_page, ancestor_path = self.tree.root_page_id, []

        removed = leaf.remove_entry(oid)
        assert removed is not None
        self.tree.write_node(leaf)
        self.tree.size -= 1  # insert_at_subtree() below counts the object again

        self.tree.insert_at_subtree(
            oid, new_location, anchor_page_id=ancestor_page, ancestor_path=ancestor_path
        )
        return UpdateOutcome.ASCENDED if ascended else UpdateOutcome.TOP_DOWN
