"""Strategy factory.

Experiments refer to update strategies by the short names the paper uses
("TD", "LBU", "GBU", plus "NAIVE" for the Section 3.1 strawman).  The factory
wires together whatever auxiliary structures each strategy needs:

* TD    — just the tree;
* NAIVE — tree + secondary hash index;
* LBU   — tree (built with parent pointers) + secondary hash index;
* GBU   — tree + secondary hash index + summary structure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.rtree.tree import RTree
from repro.secondary import ObjectHashIndex
from repro.storage.stats import IOStatistics
from repro.summary import SummaryStructure
from repro.update.base import UpdateStrategy
from repro.update.generalized import GeneralizedBottomUpUpdate
from repro.update.localized import LocalizedBottomUpUpdate
from repro.update.naive import NaiveBottomUpUpdate
from repro.update.params import TuningParameters
from repro.update.topdown import TopDownUpdate


def strategy_names() -> List[str]:
    """Names accepted by :func:`make_strategy`."""
    return ["TD", "NAIVE", "LBU", "GBU"]


def strategy_requires_parent_pointers(name: str) -> bool:
    """``True`` when the named strategy needs leaf-level parent pointers."""
    return name.upper() == "LBU"


def make_strategy(
    name: str,
    tree: RTree,
    params: Optional[TuningParameters] = None,
    stats: Optional[IOStatistics] = None,
    hash_index: Optional[ObjectHashIndex] = None,
    summary: Optional[SummaryStructure] = None,
    use_summary_for_queries: bool = True,
) -> UpdateStrategy:
    """Build the update strategy *name* over *tree*.

    Auxiliary structures are created (and bootstrapped from the tree) when
    not supplied.  ``params`` defaults to the paper's Table 1 values.
    """
    key = name.upper()
    stats = stats if stats is not None else tree.disk.stats
    params = params if params is not None else TuningParameters.paper_defaults()

    if key == "TD":
        return TopDownUpdate(tree, stats=stats)

    if hash_index is None:
        hash_index = ObjectHashIndex.build_from_tree(tree, stats=stats)

    if key == "NAIVE":
        return NaiveBottomUpUpdate(tree, hash_index, stats=stats)
    if key == "LBU":
        return LocalizedBottomUpUpdate(tree, hash_index, params=params, stats=stats)
    if key == "GBU":
        if summary is None:
            summary = SummaryStructure.build_from_tree(tree)
        return GeneralizedBottomUpUpdate(
            tree,
            hash_index,
            summary,
            params=params,
            stats=stats,
            use_summary_for_queries=use_summary_for_queries,
        )
    raise ValueError(f"unknown strategy {name!r}; expected one of {strategy_names()}")
