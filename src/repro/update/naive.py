"""The naive bottom-up strategy from the start of Section 3.1.

"An initial bottom-up approach is to access the leaf of an object's entry
directly. ... If the new extent of the object does not exceed the MBR of its
leaf node, then the update is carried out immediately.  Otherwise, a top-down
update is issued."

The paper reports that on one million uniformly distributed points this
simple strategy leaves about 82 % of the updates top-down, which motivates
both the ε-enlargement/sibling ideas of LBU and ultimately GBU.  The strategy
is included so that observation can be reproduced (see
``benchmarks/bench_naive_fallback.py``).

Under the batch engine NAIVE inherits the base group pass unchanged — it is
exactly this strategy's "update in place or give up" rule applied at group
granularity, with one hash probe charged per absorbed update.
"""

from __future__ import annotations

from typing import List, Optional

from repro.concurrency.dgl import TREE_GRANULE, GranuleLockRequest
from repro.concurrency.locks import LockMode
from repro.geometry import Point, Rect
from repro.rtree.tree import RTree
from repro.secondary import ObjectHashIndex
from repro.storage.stats import IOStatistics
from repro.update.base import UpdateOutcome, UpdateStrategy


class NaiveBottomUpUpdate(UpdateStrategy):
    """Update in place when the leaf MBR already covers the new position."""

    name = "NAIVE"

    def __init__(
        self,
        tree: RTree,
        hash_index: ObjectHashIndex,
        stats: Optional[IOStatistics] = None,
    ) -> None:
        super().__init__(tree, stats=stats)
        self.hash_index = hash_index

    def _update(self, oid: int, old_location: Point, new_location: Point) -> UpdateOutcome:
        leaf_page = self.hash_index.lookup(oid)
        if leaf_page is None:
            self.tree.insert(oid, new_location)
            return UpdateOutcome.INSERTED_NEW

        leaf = self.tree.read_node(leaf_page)
        entry = leaf.find_entry(oid)
        if entry is None:
            # Stale secondary index (should not happen); repair via top-down.
            return self._top_down_update(oid, old_location, new_location)

        if leaf.effective_mbr().contains_point(new_location):
            entry.rect = Rect.from_point(new_location)
            self.tree.write_node(leaf)
            return UpdateOutcome.IN_PLACE

        return self._top_down_update(oid, old_location, new_location)

    # ------------------------------------------------------------------
    # Lock-scope prediction (concurrency engine)
    # ------------------------------------------------------------------
    def lock_scope(
        self, oid: int, old_location: Point, new_location: Point
    ) -> List[GranuleLockRequest]:
        """One exclusive leaf granule when the update stays in place.

        NAIVE has exactly two classes: in place (lock the object's leaf,
        nothing else) or give up and go top-down (the base scope).  The
        asymmetry against TD therefore appears only for the in-place share —
        precisely the paper's point about why this strawman does not scale.
        """
        leaf_page = self.hash_index.peek(oid)
        if leaf_page is None:
            return self.insert_lock_scope(new_location)
        leaf = self.tree.peek_node(leaf_page)
        if (
            leaf.find_entry(oid) is not None
            and leaf.entries
            and leaf.effective_mbr().contains_point(new_location)
        ):
            return [
                GranuleLockRequest(leaf_page, LockMode.EXCLUSIVE),
                GranuleLockRequest(TREE_GRANULE, LockMode.INTENTION_EXCLUSIVE),
            ]
        return super().lock_scope(oid, old_location, new_location)
