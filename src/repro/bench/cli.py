"""Command-line front end: ``rtree-bottomup-bench``.

Examples::

    # list the available experiments
    rtree-bottomup-bench --list

    # reproduce Figure 5(a)-(d) at the default (quick) scale
    rtree-bottomup-bench fig5_epsilon

    # reproduce the throughput figure at 4x scale with a fixed seed
    rtree-bottomup-bench fig8_throughput --scale 4 --seed 7

    # run everything and write the combined report to a file
    rtree-bottomup-bench all --output results.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.bench.figures import all_figures, get_figure
from repro.bench.reporting import render_figure_result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rtree-bottomup-bench",
        description=(
            "Reproduce the evaluation figures of 'Supporting Frequent Updates in "
            "R-Trees: A Bottom-Up Approach' (VLDB 2003)."
        ),
    )
    parser.add_argument(
        "figure",
        nargs="?",
        default=None,
        help="figure key to run (e.g. fig5_epsilon), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale multiplier (1.0 = quick laptop scale)",
    )
    parser.add_argument("--seed", type=int, default=None, help="workload seed")
    parser.add_argument(
        "--output", type=str, default=None, help="write the report to this file as well"
    )
    parser.add_argument(
        "--report-dir",
        type=str,
        default=None,
        help=(
            "also write one report file per figure (<key>.txt) into this "
            "directory, creating it if needed — the per-figure layout CI "
            "uploads as an inspectable artifact"
        ),
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append ASCII bar charts of the measured series to the report",
    )
    return parser


def list_figures() -> str:
    lines = ["available experiments:"]
    for definition in all_figures():
        lines.append(f"  {definition.key:18s} {definition.paper_reference:18s} {definition.title}")
    return "\n".join(lines)


def run(
    figure_key: str,
    scale: float,
    seed: Optional[int],
    chart: bool = False,
    report_dir: Optional[str] = None,
) -> str:
    """Run one experiment (or 'all') and return the rendered report.

    With *report_dir*, each figure's report is additionally written to
    ``<report_dir>/<figure_key>.txt`` so individual figures can be inspected
    (and uploaded as CI artifacts) without splitting the combined report.
    """
    keys = [d.key for d in all_figures()] if figure_key == "all" else [figure_key]
    directory: Optional[Path] = None
    if report_dir is not None:
        directory = Path(report_dir)
        directory.mkdir(parents=True, exist_ok=True)
    reports: List[str] = []
    for key in keys:
        definition = get_figure(key)
        started = time.time()
        rows = definition.run(scale=scale, seed=seed)
        elapsed = time.time() - started
        rendered_figure = render_figure_result(definition, rows)
        reports.append(rendered_figure)
        if chart:
            from repro.bench.plotting import chart_all_metrics

            rendered = chart_all_metrics(rows)
            if rendered:
                reports.append(rendered)
        if directory is not None:
            (directory / f"{key}.txt").write_text(
                rendered_figure + "\n", encoding="utf-8"
            )
        reports.append(f"(wall clock: {elapsed:.1f}s at scale {scale:g})\n")
    return "\n".join(reports)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or args.figure is None:
        print(list_figures())
        return 0

    try:
        report = run(
            args.figure,
            scale=args.scale,
            seed=args.seed,
            chart=args.chart,
            report_dir=args.report_dir,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
