"""Experiment runner.

One *experiment point* is: build an index with a given
:class:`~repro.core.config.IndexConfig`, load the initial objects of a
:class:`~repro.workload.spec.WorkloadSpec`, run the update stream, then run
the query stream, measuring disk I/O and CPU time per phase — exactly the
procedure of Section 5 ("the number of queries is fixed ... which are
executed on the R-tree obtained after all the updates").

:func:`run_experiment` executes one point; :func:`run_figure_point` is a
convenience that builds both the config and the workload from keyword
overrides, used by the per-figure definitions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.config import IndexConfig
from repro.core.index import MovingObjectIndex
from repro.storage.stats import IOStatistics
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import WorkloadSpec


@dataclass
class PhaseMetrics:
    """I/O and CPU measurements of one phase (updates or queries)."""

    operations: int
    physical_io: int
    cpu_seconds: float
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def avg_io(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.physical_io / self.operations


@dataclass
class ExperimentResult:
    """Everything measured for one (config, workload) point."""

    config: IndexConfig
    spec: WorkloadSpec
    update_phase: PhaseMetrics
    query_phase: PhaseMetrics
    outcome_fractions: Dict[str, float]
    tree_stats: Dict[str, int]
    summary_size_ratio: Optional[float] = None
    final_stats: Optional[IOStatistics] = None

    @property
    def avg_update_io(self) -> float:
        return self.update_phase.avg_io

    @property
    def avg_query_io(self) -> float:
        return self.query_phase.avg_io


def run_experiment(
    config: IndexConfig,
    spec: WorkloadSpec,
    validate: bool = False,
    query_result_sink: Optional[List[int]] = None,
) -> ExperimentResult:
    """Run one experiment point and return its measurements.

    Parameters
    ----------
    config, spec:
        The index configuration and the workload to run.
    validate:
        Run the full structural validation after the update phase (used by
        integration tests; disabled for timing runs because validation walks
        the whole tree).
    query_result_sink:
        When provided, the number of results of every query is appended —
        lets tests check that different strategies return identical answers.
    """
    generator = WorkloadGenerator(spec)
    index = MovingObjectIndex(config)
    index.load(generator.initial_objects())

    # ------------------------------------------------------------- updates --
    update_start_io = index.stats.snapshot()
    cpu_start = time.process_time()
    for oid, _old, new in generator.updates():
        index.update(oid, new)
    update_cpu = time.process_time() - cpu_start
    update_io = index.stats.delta_since(update_start_io)

    if validate:
        index.validate()

    # -------------------------------------------------------------- queries --
    query_start_io = index.stats.snapshot()
    cpu_start = time.process_time()
    for window in generator.queries():
        results = index.range_query(window)
        if query_result_sink is not None:
            query_result_sink.append(len(results))
    query_cpu = time.process_time() - cpu_start
    query_io = index.stats.delta_since(query_start_io)

    update_phase = PhaseMetrics(
        operations=spec.num_updates,
        physical_io=update_io.total(),
        cpu_seconds=update_cpu,
        details={
            "physical_reads": update_io.physical_reads,
            "physical_writes": update_io.physical_writes,
            "hash_reads": update_io.hash_index_reads,
            "buffer_hit_ratio": update_io.hit_ratio,
        },
    )
    query_phase = PhaseMetrics(
        operations=spec.num_queries,
        physical_io=query_io.total(),
        cpu_seconds=query_cpu,
        details={
            "physical_reads": query_io.physical_reads,
            "physical_writes": query_io.physical_writes,
            "buffer_hit_ratio": query_io.hit_ratio,
        },
    )

    summary_ratio = None
    if index.summary is not None:
        summary_ratio = index.summary.size_ratio_to_tree()

    return ExperimentResult(
        config=config,
        spec=spec,
        update_phase=update_phase,
        query_phase=query_phase,
        outcome_fractions=index.strategy.outcome_fractions(),
        tree_stats=index.tree.node_count() | {"height": index.tree.height},
        summary_size_ratio=summary_ratio,
        final_stats=index.stats.snapshot(),
    )


def run_figure_point(
    strategy: str,
    spec: WorkloadSpec,
    config_overrides: Optional[Dict] = None,
    param_overrides: Optional[Dict] = None,
    validate: bool = False,
) -> ExperimentResult:
    """Run one strategy on one workload with config/parameter overrides.

    ``config_overrides`` are fields of :class:`IndexConfig`;
    ``param_overrides`` are fields of the nested
    :class:`~repro.update.params.TuningParameters`.
    """
    config = IndexConfig(strategy=strategy)
    if param_overrides:
        config = config.with_overrides(params=config.params.with_overrides(**param_overrides))
    if config_overrides:
        config = config.with_overrides(**config_overrides)
    return run_experiment(config, spec, validate=validate)


def run_strategies(
    strategies: Iterable[str],
    spec: WorkloadSpec,
    config_overrides: Optional[Dict] = None,
    param_overrides: Optional[Dict] = None,
) -> Dict[str, ExperimentResult]:
    """Run several strategies on identical workloads; return results by name."""
    results: Dict[str, ExperimentResult] = {}
    for strategy in strategies:
        results[strategy] = run_figure_point(
            strategy,
            spec,
            config_overrides=config_overrides,
            param_overrides=param_overrides,
        )
    return results
