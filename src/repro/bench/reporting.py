"""Text rendering of experiment results.

The paper presents its evaluation as plots; this harness prints the same
series as aligned text tables — one row per (x value, strategy) — so that the
shape of every figure (who wins, by how much, where the crossovers are) can
be read off a terminal or a CI log without plotting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.figures import FigureDefinition
from repro.bench.metrics import MetricRow


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = None) -> str:
    """Render dictionaries as an aligned text table.

    Columns default to the union of keys across rows, in first-seen order.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {column: len(str(column)) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            text = f"{value:g}" if isinstance(value, float) else str(value)
            widths[column] = max(widths[column], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)

    def line(cells: Iterable[str]) -> str:
        return "  ".join(cell.ljust(widths[column]) for cell, column in zip(cells, columns))

    header = line(str(column) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    body = "\n".join(line(cells) for cells in rendered_rows)
    return "\n".join([header, separator, body])


def rows_to_dicts(rows: Sequence[MetricRow]) -> List[Dict[str, object]]:
    """Convert metric rows to flat dictionaries for :func:`format_table`."""
    return [row.as_dict() for row in rows]


def render_figure_result(
    definition: FigureDefinition, rows: Sequence[MetricRow]
) -> str:
    """Render one figure's full report: header, expectations, and the table."""
    lines = [
        f"=== {definition.paper_reference}: {definition.title} ===",
    ]
    if definition.expected_shape:
        lines.append(f"expected shape: {definition.expected_shape}")
    if definition.notes:
        lines.append(f"note: {definition.notes}")
    lines.append("")
    lines.append(format_table(rows_to_dicts(rows)))
    return "\n".join(lines)


def pivot_by_strategy(
    rows: Sequence[MetricRow], metric: str = "avg_update_io"
) -> Dict[object, Dict[str, float]]:
    """Pivot rows into ``{x_value: {strategy: metric}}`` for tests and summaries."""
    table: Dict[object, Dict[str, float]] = {}
    for row in rows:
        value = getattr(row, metric, None)
        if value is None:
            value = row.extras.get(metric)
        if value is None:
            continue
        table.setdefault(row.x_value, {})[row.strategy] = value
    return table
