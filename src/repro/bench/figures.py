"""Per-figure experiment definitions.

Each function returns a :class:`FigureDefinition` describing one paper figure
or table: the swept parameter, the strategies to compare, and a callable that
produces the :class:`~repro.bench.metrics.MetricRow` series when executed.

Scaling
-------
The paper runs 1-10 million objects and 1-10 million updates; this harness
defaults to a few thousand of each so the full suite completes in minutes on
a laptop (see DESIGN.md, "Substitutions").  Every definition accepts a
``scale`` multiplier: ``scale=1.0`` is the quick default, larger values grow
both the object count and the update/query counts proportionally, preserving
the density and update-pressure ratios that drive the paper's trends.

The experiments and their paper counterparts:

====================  =========================================================
``table1``            Table 1 — workload / parameter values (reported, no runs)
``fig5_epsilon``      Figures 5(a)-(d) — effect of ε on update/query I/O & CPU
``fig5_distance``     Figures 5(e)-(f) — effect of the distance threshold D
``fig5_max_distance`` Figures 5(g)-(h) — effect of maximum distance moved
``fig6_level``        Figures 6(a)-(b) — effect of the level threshold ℓ
``fig6_distribution`` Figures 6(c)-(d) — effect of the initial distribution
``fig6_updates``      Figures 6(e)-(f) — effect of the number of updates
``fig6_buffers``      Figures 6(g)-(h) — effect of buffer size
``fig7_scalability``  Figure 7 — effect of dataset size
``fig8_throughput``   Figure 8 — throughput vs. update fraction under DGL
``contention_sweep``  Section 3.2.2 — throughput vs. number of clients on the
                      online engine (lock-scope contention made visible)
``batch_throughput``  beyond paper — conflict-aware batch group scheduling
                      vs. serial group execution
``shard_scaling``     beyond paper — concurrent makespan/throughput vs. the
                      number of spatial shards, uniform vs. hotspot data
``rebalance_hotspot`` beyond paper — online shard rebalancing under the
                      hotspot workload: makespan with/without the rebalancer
                      vs. the uniform-workload makespan at 4 shards
``adaptive_strategy`` beyond paper — cost-model-driven per-shard strategy
                      selection on a mixed workload where no single global
                      strategy wins across shards
``cost_model``        Section 4 — analytical vs. measured bottom-up cost
``naive_fallback``    Section 3.1 — fraction of naive bottom-up updates that
                      degrade to top-down
``ablations``         Section 3.2.1 — GBU optimisations switched off one at a
                      time (piggybacking, summary-assisted queries, sibling
                      shifting)
====================  =========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.api.builder import open_index
from repro.bench.experiment import run_figure_point
from repro.bench.metrics import MetricRow
from repro.concurrency.throughput import ThroughputExperiment, run_throughput
from repro.core.config import IndexConfig
from repro.core.index import MovingObjectIndex
from repro.cost.model import BottomUpCostModel, TopDownCostModel, TreeShape
from repro.shard import GridPartitioner, ShardedIndex
from repro.update.base import BatchUpdate
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import WorkloadSpec

#: Strategies compared in most figures, in the paper's order.
DEFAULT_STRATEGIES = ("TD", "LBU", "GBU")

#: Page size used by the I/O experiments.  The paper uses 1024-byte pages on
#: a one-million-object index, which yields a height-5 tree whose leaf MBRs
#: are small compared to the distances objects move.  At the scaled-down
#: object counts of this harness, 1024-byte pages would make leaves so large
#: that almost every update stays inside its leaf, flattening the differences
#: the figures are about.  256-byte pages restore the paper's tree height
#: (5), its movement-to-leaf-extent ratio and its ~80 % naive fallback rate
#: (see EXPERIMENTS.md, "Scaling substitutions").
BENCH_PAGE_SIZE = 256

#: Table 1 of the paper: parameters and the values used (defaults in bold in
#: the paper are listed first here).
TABLE1_PARAMETERS: Dict[str, Sequence] = {
    "epsilon": (0.003, 0.0, 0.007, 0.015, 0.03),
    "distance_threshold": (0.03, 0.0, 0.3, 3.0),
    "level_threshold": ("height-1", 0, 1, 2, 3),
    "data_distribution": ("Uniform", "Gaussian", "Skewed"),
    "buffer_percent": (1, 0, 3, 5, 10),
    "max_distance_moved": (0.03, 0.003, 0.015, 0.06, 0.1, 0.15),
    "num_updates_millions_paper": (1, 2, 3, 5, 7, 10),
    "database_size_millions_paper": (1, 2, 5, 10),
    "page_size_bytes": (1024,),
    "queries_paper": (1_000_000,),
}


@dataclass
class FigureDefinition:
    """A runnable description of one figure/table reproduction."""

    key: str
    title: str
    paper_reference: str
    x_label: str
    runner: Callable[[float, Optional[int]], List[MetricRow]]
    notes: str = ""
    expected_shape: str = ""

    def run(self, scale: float = 1.0, seed: Optional[int] = None) -> List[MetricRow]:
        """Execute the experiment at the given scale; returns the metric rows."""
        return self.runner(scale, seed)


# ---------------------------------------------------------------------------
# Scaling helpers
# ---------------------------------------------------------------------------

def _base_spec(scale: float, seed: Optional[int] = None, **overrides) -> WorkloadSpec:
    """The default workload at the given scale (uniform, default parameters)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    seed = 1 if seed is None else seed
    spec = WorkloadSpec(
        num_objects=max(500, int(4_000 * scale)),
        num_updates=max(500, int(8_000 * scale)),
        num_queries=max(100, int(400 * scale)),
        seed=seed,
    )
    return spec.with_overrides(**overrides) if overrides else spec


def _rows_for_point(
    figure_x_label: str,
    x_value,
    strategy: str,
    spec: WorkloadSpec,
    config_overrides: Optional[Dict] = None,
    param_overrides: Optional[Dict] = None,
    label: Optional[str] = None,
) -> MetricRow:
    merged_overrides = {"page_size": BENCH_PAGE_SIZE}
    if config_overrides:
        merged_overrides.update(config_overrides)
    result = run_figure_point(
        strategy,
        spec,
        config_overrides=merged_overrides,
        param_overrides=param_overrides,
    )
    return MetricRow(
        x_label=figure_x_label,
        x_value=x_value,
        strategy=label if label is not None else strategy,
        avg_update_io=result.avg_update_io,
        avg_query_io=result.avg_query_io,
        update_cpu_seconds=result.update_phase.cpu_seconds,
        query_cpu_seconds=result.query_phase.cpu_seconds,
        extras={"top_down_fraction": result.outcome_fractions.get("top_down", 0.0)},
    )


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def _run_table1(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    for parameter, values in TABLE1_PARAMETERS.items():
        rows.append(
            MetricRow(
                x_label="parameter",
                x_value=parameter,
                strategy="-",
                extras={"default": values[0] if not isinstance(values[0], str) else 0.0},
            )
        )
        rows[-1].extras["values"] = ", ".join(str(v) for v in values)  # type: ignore[assignment]
    return rows


# ---------------------------------------------------------------------------
# Figure 5(a)-(d): effect of epsilon
# ---------------------------------------------------------------------------

EPSILON_VALUES = (0.0, 0.003, 0.007, 0.015, 0.03)


def _run_fig5_epsilon(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    spec = _base_spec(scale, seed)
    for epsilon in EPSILON_VALUES:
        for strategy in DEFAULT_STRATEGIES:
            rows.append(
                _rows_for_point(
                    "epsilon",
                    epsilon,
                    strategy,
                    spec,
                    param_overrides={"epsilon": epsilon},
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 5(e)-(f): effect of the distance threshold D
# ---------------------------------------------------------------------------

DISTANCE_THRESHOLD_VALUES = (0.0, 0.03, 0.3, 3.0)


def _run_fig5_distance(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    spec = _base_spec(scale, seed)
    for threshold in DISTANCE_THRESHOLD_VALUES:
        for strategy in DEFAULT_STRATEGIES:
            rows.append(
                _rows_for_point(
                    "distance_threshold",
                    threshold,
                    strategy,
                    spec,
                    param_overrides={"distance_threshold": threshold},
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 5(g)-(h): effect of the maximum distance moved between updates
# ---------------------------------------------------------------------------

MAX_DISTANCE_VALUES = (0.003, 0.015, 0.03, 0.06, 0.1, 0.15)


def _run_fig5_max_distance(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    for max_distance in MAX_DISTANCE_VALUES:
        spec = _base_spec(scale, seed, max_distance=max_distance)
        for strategy in DEFAULT_STRATEGIES:
            rows.append(_rows_for_point("max_distance", max_distance, strategy, spec))
    return rows


# ---------------------------------------------------------------------------
# Figure 6(a)-(b): effect of the level threshold (GBU-0 .. GBU-3)
# ---------------------------------------------------------------------------

LEVEL_THRESHOLDS = (0, 1, 2, 3)
LEVEL_MAX_DISTANCES = (0.03, 0.1, 0.15)


def _run_fig6_level(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    for max_distance in LEVEL_MAX_DISTANCES:
        spec = _base_spec(scale, seed, max_distance=max_distance)
        for strategy in ("TD", "LBU"):
            row = _rows_for_point("max_distance", max_distance, strategy, spec)
            rows.append(row)
        for level in LEVEL_THRESHOLDS:
            row = _rows_for_point(
                "max_distance",
                max_distance,
                "GBU",
                spec,
                param_overrides={"level_threshold": level},
                label=f"GBU-{level}",
            )
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 6(c)-(d): effect of the initial data distribution
# ---------------------------------------------------------------------------

DISTRIBUTIONS = ("uniform", "gaussian", "skewed")


def _run_fig6_distribution(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    for distribution in DISTRIBUTIONS:
        spec = _base_spec(scale, seed, distribution=distribution)
        for strategy in DEFAULT_STRATEGIES:
            rows.append(_rows_for_point("distribution", distribution, strategy, spec))
    return rows


# ---------------------------------------------------------------------------
# Figure 6(e)-(f): effect of the number of updates
# ---------------------------------------------------------------------------

UPDATE_MULTIPLIERS = (1, 2, 3, 5, 7, 10)


def _run_fig6_updates(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    base = _base_spec(scale, seed)
    base_updates = max(1_000, base.num_updates // 2)
    for multiplier in UPDATE_MULTIPLIERS:
        spec = base.with_overrides(num_updates=base_updates * multiplier)
        for strategy in DEFAULT_STRATEGIES:
            rows.append(
                _rows_for_point("num_updates", base_updates * multiplier, strategy, spec)
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 6(g)-(h): effect of the buffer size
# ---------------------------------------------------------------------------

BUFFER_PERCENTAGES = (0.0, 1.0, 3.0, 5.0, 10.0)


def _run_fig6_buffers(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    spec = _base_spec(scale, seed)
    for percent in BUFFER_PERCENTAGES:
        for strategy in DEFAULT_STRATEGIES:
            rows.append(
                _rows_for_point(
                    "buffer_percent",
                    percent,
                    strategy,
                    spec,
                    config_overrides={"buffer_percent": percent},
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 7: scalability with the dataset size
# ---------------------------------------------------------------------------

DATASET_MULTIPLIERS = (1, 2, 5, 10)


def _run_fig7_scalability(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    base = _base_spec(scale, seed)
    base_objects = max(500, base.num_objects // 2)
    for multiplier in DATASET_MULTIPLIERS:
        spec = base.with_overrides(num_objects=base_objects * multiplier)
        for strategy in DEFAULT_STRATEGIES:
            rows.append(
                _rows_for_point("num_objects", base_objects * multiplier, strategy, spec)
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 8: throughput under DGL for varying update fractions
# ---------------------------------------------------------------------------

UPDATE_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Scaled-down stand-ins for the paper's throughput setup (50 threads over a
#: one-million-object index with query windows in [0, 0.01]).  At a few
#: thousand objects those windows would make queries far cheaper than updates
#: and 50 clients would contend on a few hundred leaf granules, inverting the
#: cost ratios the figure is about; the substitutions below keep the
#: query/update cost ratio and the client-to-granule ratio close to the
#: paper's (see EXPERIMENTS.md).
THROUGHPUT_QUERY_SIDE = 0.15
THROUGHPUT_CLIENTS = 16


def _run_fig8_throughput(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    seed = 1 if seed is None else seed
    num_objects = max(1_000, int(8_000 * scale))
    num_operations = max(200, int(1_000 * scale))
    for fraction in UPDATE_FRACTIONS:
        for strategy in DEFAULT_STRATEGIES:
            spec = WorkloadSpec(
                num_objects=num_objects,
                num_updates=0,
                num_queries=0,
                seed=seed,
                query_max_side=THROUGHPUT_QUERY_SIDE,
            )
            generator = WorkloadGenerator(spec)
            index = MovingObjectIndex(IndexConfig(strategy=strategy))
            index.load(generator.initial_objects())
            experiment = ThroughputExperiment(
                num_operations=num_operations,
                update_fraction=fraction,
                num_clients=THROUGHPUT_CLIENTS,
            )
            result = run_throughput(index, generator, experiment)
            rows.append(
                MetricRow(
                    x_label="update_fraction",
                    x_value=fraction,
                    strategy=strategy,
                    throughput=result.throughput,
                    extras={
                        "lock_waits": float(result.lock_waits),
                        "utilisation": result.utilisation,
                    },
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Contention sweep: throughput vs. number of clients on the online engine
# ---------------------------------------------------------------------------

CONTENTION_CLIENT_COUNTS = (1, 4, 16, 50)
CONTENTION_UPDATE_FRACTION = 0.75


def _run_contention_sweep(scale: float, seed: Optional[int]) -> List[MetricRow]:
    """Sweep the number of virtual clients at a fixed update-heavy mix.

    Every point runs **online**: the engine deals the generator's mixed
    stream over the clients (one stream per client), each operation predicts
    its granule lock scope and executes for real, so the sweep exposes how
    each strategy's lock footprint limits its scaling — the Section 3.2.2
    argument the record/replay pipeline could not show.
    """
    rows: List[MetricRow] = []
    seed = 1 if seed is None else seed
    num_objects = max(1_000, int(8_000 * scale))
    num_operations = max(200, int(1_000 * scale))
    for clients in CONTENTION_CLIENT_COUNTS:
        for strategy in DEFAULT_STRATEGIES:
            spec = WorkloadSpec(
                num_objects=num_objects,
                num_updates=0,
                num_queries=0,
                seed=seed,
                query_max_side=THROUGHPUT_QUERY_SIDE,
            )
            generator = WorkloadGenerator(spec)
            # Declarative construction (API v2): one spec names the index
            # kind, configuration and session defaults.
            index = open_index(
                {
                    "kind": "single",
                    "config": {"strategy": strategy},
                    "engine": {"num_clients": clients},
                }
            )
            index.load(generator.initial_objects())
            session = index.engine()
            result = session.run_mixed(
                generator, num_operations, CONTENTION_UPDATE_FRACTION
            )
            rows.append(
                MetricRow(
                    x_label="num_clients",
                    x_value=clients,
                    strategy=strategy,
                    throughput=result.throughput,
                    extras={
                        "lock_waits": float(result.lock_waits),
                        "utilisation": result.utilisation,
                    },
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Conflict-aware batch scheduling vs. serial group execution
# ---------------------------------------------------------------------------

BATCH_SCHEDULING_CLIENTS = 16
BATCH_SCHEDULING_STRATEGIES = ("TD", "NAIVE", "LBU", "GBU")


def _run_batch_throughput(scale: float, seed: Optional[int]) -> List[MetricRow]:
    """Makespan of one Gaussian update batch: serial groups vs. the engine.

    The same batch is planned into group-by-leaf buckets twice; the serial
    run drains them on one virtual client (the PR 1 pipeline's semantics),
    the concurrent run schedules non-conflicting groups in parallel under
    their ``group_lock_scope()`` granule sets.  Concurrent makespan must be
    strictly lower whenever at least two groups are disjoint.
    """
    rows: List[MetricRow] = []
    seed = 1 if seed is None else seed
    num_objects = max(1_000, int(4_000 * scale))
    num_updates = max(1_000, int(10_000 * scale))
    for strategy in BATCH_SCHEDULING_STRATEGIES:
        spec = WorkloadSpec(
            num_objects=num_objects,
            num_updates=num_updates,
            num_queries=0,
            distribution="gaussian",
            seed=seed,
        )
        makespans: Dict[str, float] = {}
        lock_waits = 0
        for label, clients in (("serial", 1), ("concurrent", BATCH_SCHEDULING_CLIENTS)):
            generator = WorkloadGenerator(spec)
            index = MovingObjectIndex(IndexConfig(strategy=strategy))
            index.load(generator.initial_objects())
            operations = [
                BatchUpdate(oid, old, new) for oid, old, new in generator.updates()
            ]
            result = index.engine(num_clients=clients).engine.run_batch(operations)
            makespans[label] = result.makespan
            if label == "concurrent":
                lock_waits = result.schedule.lock_waits
        concurrent = makespans["concurrent"]
        rows.append(
            MetricRow(
                x_label="strategy",
                x_value=strategy,
                strategy=strategy,
                throughput=(num_updates / concurrent) if concurrent > 0 else 0.0,
                extras={
                    "serial_makespan": makespans["serial"],
                    "concurrent_makespan": concurrent,
                    "speedup": (makespans["serial"] / concurrent)
                    if concurrent > 0
                    else 0.0,
                    "lock_waits": float(lock_waits),
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Shard scaling: concurrent makespan vs. number of spatial shards
# ---------------------------------------------------------------------------

SHARD_COUNTS = (1, 2, 4, 8)
SHARD_SCALING_CLIENTS = 16
SHARD_SCALING_WORKLOADS = ("uniform", "hotspot")


def _run_shard_scaling(scale: float, seed: Optional[int]) -> List[MetricRow]:
    """Concurrent makespan of an update stream vs. the shard count.

    Every point runs the same seeded update stream through a
    :class:`~repro.shard.index.ShardedIndex` over a uniform grid, with a
    fixed number of virtual clients; per-shard DGL lock namespaces let
    operations on different shards schedule in parallel, and migrations
    (boundary-crossing moves) lock both shards.  The strategy is **TD**
    and the buffer is 0 % (a paper configuration): top-down update cost
    scales with tree height, so spatial partitioning — which shortens every
    shard's tree — is exactly the axis this figure isolates.  The bottom-up
    strategies already removed that height dependence per the paper's own
    argument, which is why they are not the interesting series here.

    The hotspot variant runs the identical pipeline on the Zipf-skewed
    hotspot distribution: a uniform grid then concentrates objects (and
    update traffic) on few shards, so the reported shard imbalance grows
    and the makespan win shrinks — the skew caveat reported alongside.
    """
    rows: List[MetricRow] = []
    seed = 1 if seed is None else seed
    num_objects = max(1_000, int(8_000 * scale))
    num_operations = max(300, int(1_000 * scale))
    for distribution in SHARD_SCALING_WORKLOADS:
        for num_shards in SHARD_COUNTS:
            spec = WorkloadSpec(
                num_objects=num_objects,
                num_updates=0,
                num_queries=0,
                seed=seed,
                distribution=distribution,
            )
            generator = WorkloadGenerator(spec)
            index = open_index(
                {
                    "kind": "sharded",
                    "shards": num_shards,
                    "config": {
                        "strategy": "TD",
                        "page_size": BENCH_PAGE_SIZE,
                        "buffer_percent": 0.0,
                    },
                    "engine": {"num_clients": SHARD_SCALING_CLIENTS},
                }
            )
            index.load(generator.initial_objects())
            session = index.engine()
            result = session.run_mixed(
                generator, num_operations, update_fraction=1.0
            )
            populations = index.shard_populations()
            rows.append(
                MetricRow(
                    x_label="num_shards",
                    x_value=num_shards,
                    strategy=distribution,
                    throughput=result.throughput,
                    extras={
                        "makespan": result.makespan,
                        "lock_waits": float(result.lock_waits),
                        "migrations": float(index.migrations),
                        # 1.0 = perfectly balanced; k = the hottest shard
                        # holds k times its fair share.
                        "imbalance": max(populations)
                        * num_shards
                        / max(1, sum(populations)),
                    },
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Rebalance hotspot: online boundary adjustment vs. the static grid
# ---------------------------------------------------------------------------

REBALANCE_HOTSPOT_SHARDS = 4
REBALANCE_HOTSPOT_CLIENTS = 16
#: Small pages make the hot shard's tree measurably taller than a balanced
#: shard's — the height penalty the rebalancer removes.
REBALANCE_HOTSPOT_PAGE_SIZE = 256
#: One decisive boundary adjustment per run: trigger at 1.5x max/mean load
#: once 150 operations of evidence exist; the huge cooldown prevents re-cut
#: thrash inside one measured run.
REBALANCE_HOTSPOT_POLICY = {"threshold": 1.5, "min_ops": 150, "cooldown": 100_000}


def _run_rebalance_hotspot(scale: float, seed: Optional[int]) -> List[MetricRow]:
    """Hotspot makespan with the online rebalancer vs. the static grid.

    Three runs of the same seeded pure-update stream at 4 shards and a
    fixed client count (TD strategy — the one whose cost scales with tree
    height — at the paper's default 1 % buffer): the **uniform** workload
    on the static grid (the balanced reference), the **hotspot** workload
    on the static grid (a sharply skewed Zipf distribution concentrates
    ~85 % of the objects and update traffic on one shard, whose tree grows
    a level taller), and the hotspot workload with the **rebalancer**
    attached.  The rebalancer observes the skew, re-cuts the partition
    boundaries by load, and migrates the displaced objects through
    conflict-scheduled engine batches — bulk leaf groups interleaved with
    the live clients — with the one-off migration cost paid inside the
    measured makespan.  Expected shape — and the acceptance assertion of
    ``benchmarks/bench_rebalance_hotspot.py``: the rebalanced hotspot
    makespan is strictly below the static hotspot makespan and within 1.5x
    of the uniform makespan.

    The workload floors are deliberately high relative to *scale*: the
    rebalancer's one-off migration cost only amortises over a long enough
    update stream, which is exactly the regime the figure demonstrates.
    """
    rows: List[MetricRow] = []
    seed = 1 if seed is None else seed
    num_objects = max(1_200, int(1_200 * scale))
    num_operations = max(9_600, int(9_600 * scale))
    variants = (
        ("uniform", "uniform", False),
        ("hotspot", "hotspot", False),
        ("hotspot+rebalance", "hotspot", True),
    )
    for label, distribution, rebalance in variants:
        spec = WorkloadSpec(
            num_objects=num_objects,
            num_updates=0,
            num_queries=0,
            seed=seed,
            distribution=distribution,
            hotspot_cells=2,
            hotspot_exponent=3.0,
        )
        generator = WorkloadGenerator(spec)
        index_spec: Dict = {
            "kind": "sharded",
            "shards": REBALANCE_HOTSPOT_SHARDS,
            "config": {
                "strategy": "TD",
                "page_size": REBALANCE_HOTSPOT_PAGE_SIZE,
                "buffer_percent": 1.0,
            },
            "engine": {"num_clients": REBALANCE_HOTSPOT_CLIENTS},
        }
        if rebalance:
            index_spec["rebalance"] = dict(REBALANCE_HOTSPOT_POLICY)
        index = open_index(index_spec)
        index.load(generator.initial_objects())
        session = index.engine()
        result = session.run_mixed(generator, num_operations, update_fraction=1.0)
        rows.append(
            MetricRow(
                x_label="series",
                x_value=label,
                strategy=label,
                throughput=result.throughput,
                extras={
                    "makespan": result.makespan,
                    "lock_waits": float(result.lock_waits),
                    "migrations": float(index.migrations),
                    "imbalance": index.population_imbalance(),
                    "rebalances": float(
                        index.rebalancer.rebalances
                        if index.rebalancer is not None
                        else 0
                    ),
                    # Scheduled rebalance operations (leaf buckets + loose
                    # members), not objects moved — migrations counts those.
                    "rebalance_ops": float(result.kinds.get("rebalance", 0)),
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Adaptive strategy: per-shard cost-model selection vs. static globals
# ---------------------------------------------------------------------------

#: Two shards: the grid splits the unit square into left/right halves.
ADAPTIVE_STRATEGY_SHARDS = 2
#: The calibrated operating point: at 8 % buffer the hot-cell update shard's
#: working set is cached (top-down descents nearly free, every bottom-up
#: update still pays its unbuffered hash probe → TD wins), while the uniform
#: query-heavy shard thrashes the buffer (GBU's summary-guided leaf-only
#: queries win).  No single global strategy wins both.
ADAPTIVE_STRATEGY_BUFFER_PERCENT = 8.0
ADAPTIVE_STRATEGY_PAGE_SIZE = 4096
#: Evidence gate of the adaptive runs: first switch after 256 observed
#: operations on a shard, later switches after 400.
ADAPTIVE_STRATEGY_POLICY = {"cooldown": 400, "min_ops": 256}
#: The adaptive variant starts on NAIVE — a strategy that wins *neither*
#: shard, so both observed switches are real work, and their cost (the LBU/
#: GBU transitions plus the warmup spent under the wrong strategy) is paid
#: inside the measured makespan.
ADAPTIVE_STRATEGY_INITIAL = "NAIVE"
ADAPTIVE_STRATEGY_VARIANTS = ("TD", "NAIVE", "LBU", "GBU", "adaptive")
#: The controller is polled every this many operations — the stand-in for
#: the engine's maintenance interleave in the benchmark's serial driver.
ADAPTIVE_STRATEGY_MAINTENANCE_EVERY = 100


def adaptive_mixed_workload(scale: float, seed: Optional[int]):
    """Initial placements + op stream of the two-regime mixed workload.

    Shard 0 (left half) holds a hot cell of objects making short moves —
    pure update traffic over a cacheable working set.  Shard 1 (right half)
    holds a uniform spread answering 0.1-extent window queries with a
    trickle of short moves — query-heavy traffic over a buffer-thrashing
    working set.  The floors are deliberately high relative to *scale*
    (like the rebalance-hotspot figure): the buffer-regime contrast that
    separates the strategies only exists at the calibrated size, so smoke
    runs shrink nothing — they are simply the same workload.

    Returns ``(points, ops)`` where ops are ``("update", oid, Point)`` and
    ``("range_query", None, Rect)`` tuples, identical for every variant.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    import random as _random

    rng = _random.Random(1 if seed is None else seed)
    per_shard = max(3_000, int(3_000 * scale))
    steps = max(3_000, int(3_000 * scale))
    points: List = []
    positions: Dict[int, object] = {}
    oid = 0
    from repro.geometry import Point, Rect

    for _ in range(per_shard):  # hot cell inside shard 0
        p = Point(rng.uniform(0.05, 0.20), rng.uniform(0.40, 0.55))
        points.append((oid, p))
        positions[oid] = p
        oid += 1
    for _ in range(per_shard):  # uniform spread over shard 1
        p = Point(rng.uniform(0.55, 0.95), rng.uniform(0.05, 0.95))
        points.append((oid, p))
        positions[oid] = p
        oid += 1
    hot = list(range(per_shard))
    cold = list(range(per_shard, 2 * per_shard))
    ops: List = []
    for _ in range(steps):
        o = rng.choice(hot)
        p = positions[o]
        moved = Point(
            min(0.20, max(0.05, p.x + rng.uniform(-0.01, 0.01))),
            min(0.55, max(0.40, p.y + rng.uniform(-0.01, 0.01))),
        )
        positions[o] = moved
        ops.append(("update", o, moved))
        if rng.random() < 0.9:
            x, y = rng.uniform(0.55, 0.85), rng.uniform(0.05, 0.85)
            ops.append(("range_query", None, Rect(x, y, x + 0.1, y + 0.1)))
        else:
            o = rng.choice(cold)
            p = positions[o]
            moved = Point(
                min(0.95, max(0.55, p.x + rng.uniform(-0.02, 0.02))),
                min(0.95, max(0.05, p.y + rng.uniform(-0.02, 0.02))),
            )
            positions[o] = moved
            ops.append(("update", o, moved))
    return points, ops


def run_adaptive_variant(variant: str, points, ops) -> Dict:
    """One cell of the comparison: a static global strategy or ``adaptive``.

    The makespan is the summed per-shard charged I/O (physical reads +
    writes + unbuffered hash probes) over the op stream — the serial
    execution cost, deterministic at fixed seed.  For the adaptive variant
    every switch (the LBU sweep's leaf writes, the warmup spent under the
    initial strategy) lands inside the measured window.
    """
    spec: Dict = {
        "kind": "sharded",
        "shards": ADAPTIVE_STRATEGY_SHARDS,
        "config": {
            "strategy": ADAPTIVE_STRATEGY_INITIAL
            if variant == "adaptive"
            else variant,
            "page_size": ADAPTIVE_STRATEGY_PAGE_SIZE,
            "buffer_percent": ADAPTIVE_STRATEGY_BUFFER_PERCENT,
        },
    }
    if variant == "adaptive":
        spec["adaptive"] = dict(ADAPTIVE_STRATEGY_POLICY)
    index = open_index(spec)
    index.load(points)
    index.reset_statistics()
    for i, (kind, oid, argument) in enumerate(ops):
        if kind == "update":
            index.update(oid, argument)
        else:
            index.range_query(argument)
        if i % ADAPTIVE_STRATEGY_MAINTENANCE_EVERY == (
            ADAPTIVE_STRATEGY_MAINTENANCE_EVERY - 1
        ):
            index.auto_adapt()
    per_shard = [shard.stats.total_physical_io for shard in index.shards]
    index.validate()
    return {
        "variant": variant,
        "makespan_io": sum(per_shard),
        "shard_io": per_shard,
        "strategies": index.active_strategies(),
        "switches": index.adaptive.switches if index.adaptive is not None else 0,
        "fingerprint": tuple(
            sorted(
                (oid, index.position_of(oid).x, index.position_of(oid).y)
                for oid in index.object_directory()
            )
        ),
    }


def _run_adaptive_strategy(scale: float, seed: Optional[int]) -> List[MetricRow]:
    """Adaptive per-shard selection vs. every static global strategy.

    Expected shape — and the acceptance assertion of
    ``benchmarks/bench_adaptive_strategy.py``: the adaptive run's total
    makespan (switch cost included) is strictly below every static global
    strategy's, because TD wins the hot-cell update shard while GBU wins
    the query-heavy shard and no static choice gets both.
    """
    points, ops = adaptive_mixed_workload(scale, seed)
    rows: List[MetricRow] = []
    fingerprints = set()
    for variant in ADAPTIVE_STRATEGY_VARIANTS:
        cell = run_adaptive_variant(variant, points, ops)
        fingerprints.add(cell["fingerprint"])
        rows.append(
            MetricRow(
                x_label="series",
                x_value=variant,
                strategy=variant,
                extras={
                    "makespan": float(cell["makespan_io"]),
                    "shard0_io": float(cell["shard_io"][0]),
                    "shard1_io": float(cell["shard_io"][1]),
                    "switches": float(cell["switches"]),
                },
            )
        )
    if len(fingerprints) != 1:
        raise AssertionError(
            "strategy variants diverged on final object positions — the "
            "comparison is meaningless unless every variant indexes the "
            "same data"
        )
    return rows


# ---------------------------------------------------------------------------
# Section 4: analytical cost model vs. measurement
# ---------------------------------------------------------------------------

COST_DISTANCES = (0.003, 0.015, 0.03, 0.06, 0.1, 0.15)


def _run_cost_model(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    spec = _base_spec(scale, seed)
    generator = WorkloadGenerator(spec)
    index = MovingObjectIndex(IndexConfig(strategy="GBU", page_size=BENCH_PAGE_SIZE))
    index.load(generator.initial_objects())
    shape = TreeShape.from_tree(index.tree)
    top_down = TopDownCostModel(shape)
    bottom_up = BottomUpCostModel(shape)
    rows.append(
        MetricRow(
            x_label="distance",
            x_value="best-case",
            strategy="TD-analytic",
            avg_update_io=top_down.best_case_cost(),
        )
    )
    for distance in COST_DISTANCES:
        rows.append(
            MetricRow(
                x_label="distance",
                x_value=distance,
                strategy="GBU-analytic",
                avg_update_io=bottom_up.update_cost(distance),
            )
        )
    # Measured counterpart: GBU at the same movement scales.
    for distance in COST_DISTANCES:
        measured_spec = spec.with_overrides(max_distance=distance)
        rows.append(_rows_for_point("distance", distance, "GBU", measured_spec))
    return rows


# ---------------------------------------------------------------------------
# Section 3.1: the naive bottom-up fallback fraction
# ---------------------------------------------------------------------------

def _run_naive_fallback(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    spec = _base_spec(scale, seed)
    for strategy in ("NAIVE", "LBU", "GBU"):
        result = run_figure_point(
            strategy, spec, config_overrides={"page_size": BENCH_PAGE_SIZE}
        )
        rows.append(
            MetricRow(
                x_label="strategy",
                x_value=strategy,
                strategy=strategy,
                avg_update_io=result.avg_update_io,
                extras={
                    "top_down_fraction": result.outcome_fractions.get("top_down", 0.0),
                    "in_place_fraction": result.outcome_fractions.get("in_place", 0.0),
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Ablations of GBU's optimisations (Section 3.2.1)
# ---------------------------------------------------------------------------

def _run_ablations(scale: float, seed: Optional[int]) -> List[MetricRow]:
    rows: List[MetricRow] = []
    spec = _base_spec(scale, seed)
    variants = {
        "GBU": {},
        "GBU-no-piggyback": {"param_overrides": {"piggyback": False}},
        "GBU-no-summary-queries": {"config_overrides": {"use_summary_for_queries": False}},
        "GBU-L0": {"param_overrides": {"level_threshold": 0}},
        "GBU-eps0": {"param_overrides": {"epsilon": 0.0}},
    }
    for label, overrides in variants.items():
        config_overrides = {"page_size": BENCH_PAGE_SIZE}
        config_overrides.update(overrides.get("config_overrides") or {})
        result = run_figure_point(
            "GBU",
            spec,
            config_overrides=config_overrides,
            param_overrides=overrides.get("param_overrides"),
        )
        rows.append(
            MetricRow(
                x_label="variant",
                x_value=label,
                strategy=label,
                avg_update_io=result.avg_update_io,
                avg_query_io=result.avg_query_io,
                extras={"top_down_fraction": result.outcome_fractions.get("top_down", 0.0)},
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_FIGURES: Dict[str, FigureDefinition] = {}


def _register(definition: FigureDefinition) -> None:
    _FIGURES[definition.key] = definition


_register(FigureDefinition(
    key="table1",
    title="Workload parameters and their values",
    paper_reference="Table 1",
    x_label="parameter",
    runner=_run_table1,
    notes="Reported verbatim; paper-scale counts are recorded in WorkloadSpec.",
))
_register(FigureDefinition(
    key="fig5_epsilon",
    title="Effect of epsilon on update and query cost",
    paper_reference="Figure 5(a)-(d)",
    x_label="epsilon",
    runner=_run_fig5_epsilon,
    expected_shape="GBU lowest update I/O; larger eps helps GBU updates, hurts queries; LBU above TD.",
))
_register(FigureDefinition(
    key="fig5_distance",
    title="Effect of the distance threshold D",
    paper_reference="Figure 5(e)-(f)",
    x_label="distance threshold",
    runner=_run_fig5_distance,
    expected_shape="GBU best throughout; TD/LBU flat (D only applies to GBU).",
))
_register(FigureDefinition(
    key="fig5_max_distance",
    title="Effect of the maximum distance moved between updates",
    paper_reference="Figure 5(g)-(h)",
    x_label="max distance moved",
    runner=_run_fig5_max_distance,
    expected_shape="All strategies degrade with faster movement; TD degrades the most; GBU best.",
))
_register(FigureDefinition(
    key="fig6_level",
    title="Effect of the level threshold (ascending the R-tree)",
    paper_reference="Figure 6(a)-(b)",
    x_label="max distance moved",
    runner=_run_fig6_level,
    expected_shape="GBU-3 ~ GBU-2 best; GBU-0 better than LBU; TD worst at high speeds.",
))
_register(FigureDefinition(
    key="fig6_distribution",
    title="Effect of the initial data distribution",
    paper_reference="Figure 6(c)-(d)",
    x_label="distribution",
    runner=_run_fig6_distribution,
    expected_shape="Updates cheapest on uniform; skewed queries cheap (mostly empty space).",
))
_register(FigureDefinition(
    key="fig6_updates",
    title="Effect of the number of updates",
    paper_reference="Figure 6(e)-(f)",
    x_label="number of updates",
    runner=_run_fig6_updates,
    expected_shape="Costs grow with update volume; GBU lowest update cost and best query cost after many updates.",
))
_register(FigureDefinition(
    key="fig6_buffers",
    title="Effect of the buffer size",
    paper_reference="Figure 6(g)-(h)",
    x_label="buffer (% of database)",
    runner=_run_fig6_buffers,
    expected_shape="Everything improves with buffering; LBU drops below TD once a buffer exists; GBU best.",
))
_register(FigureDefinition(
    key="fig7_scalability",
    title="Scalability with the dataset size",
    paper_reference="Figure 7(a)-(b)",
    x_label="number of objects",
    runner=_run_fig7_scalability,
    expected_shape="Update cost grows slowly with dataset size; GBU remains best; query costs converge.",
))
_register(FigureDefinition(
    key="fig8_throughput",
    title="Throughput for varying update/query mixes under DGL",
    paper_reference="Figure 8",
    x_label="update fraction",
    runner=_run_fig8_throughput,
    expected_shape="TD/LBU throughput falls as updates dominate; GBU rises and stays above TD.",
))
_register(FigureDefinition(
    key="contention_sweep",
    title="Throughput vs. number of concurrent clients (online engine)",
    paper_reference="Section 3.2.2",
    x_label="number of clients",
    runner=_run_contention_sweep,
    notes="Online multi-client streams; every operation predicts and acquires its DGL lock scope.",
    expected_shape="Throughput grows with clients until contention saturates; GBU >= LBU >= TD throughout.",
))
_register(FigureDefinition(
    key="batch_throughput",
    title="Conflict-aware batch scheduling vs. serial group execution",
    paper_reference="beyond paper",
    x_label="strategy",
    runner=_run_batch_throughput,
    notes="Group-by-leaf buckets scheduled as concurrent virtual operations under group_lock_scope().",
    expected_shape="Concurrent makespan strictly below serial for every strategy.",
))
_register(FigureDefinition(
    key="shard_scaling",
    title="Concurrent makespan vs. number of spatial shards",
    paper_reference="beyond paper",
    x_label="number of shards",
    runner=_run_shard_scaling,
    notes=(
        "ShardedIndex over a uniform grid, TD strategy, 0% buffer, fixed "
        "client count; per-shard DGL lock namespaces, migrations lock both "
        "shards.  Hotspot variant shows the skew caveat (imbalance column)."
    ),
    expected_shape=(
        "Uniform: makespan at 4+ shards strictly below 1 shard (shorter "
        "per-shard trees + conflict isolation).  Hotspot: smaller win, "
        "higher imbalance."
    ),
))
_register(FigureDefinition(
    key="rebalance_hotspot",
    title="Online shard rebalancing under the hotspot workload",
    paper_reference="beyond paper",
    x_label="series",
    runner=_run_rebalance_hotspot,
    notes=(
        "4 shards, TD, 1% buffer, small pages, fixed client count; the "
        "rebalancer monitors per-shard load, re-cuts the partition "
        "boundaries and migrates displaced objects as conflict-scheduled "
        "bulk leaf groups interleaved with the live clients."
    ),
    expected_shape=(
        "Rebalanced hotspot makespan strictly below the static hotspot "
        "makespan and within 1.5x of the uniform-workload makespan; final "
        "imbalance drops towards 1."
    ),
))
_register(FigureDefinition(
    key="adaptive_strategy",
    title="Adaptive per-shard strategy selection vs. static global strategies",
    paper_reference="beyond paper",
    x_label="series",
    runner=_run_adaptive_strategy,
    notes=(
        "2 shards, 8% buffer: a hot-cell update shard (cached working set "
        "-> TD wins) next to a uniform query-heavy shard (buffer-thrashing "
        "-> GBU's summary-guided queries win).  The adaptive variant starts "
        "on NAIVE and the cost-model controller hot-swaps each shard; the "
        "switch cost is inside the measured makespan."
    ),
    expected_shape=(
        "Adaptive total I/O makespan strictly below every static global "
        "strategy (TD loses the query shard, GBU/LBU/NAIVE lose the "
        "update shard)."
    ),
))
_register(FigureDefinition(
    key="cost_model",
    title="Analytical bottom-up cost vs. measured GBU cost",
    paper_reference="Section 4",
    x_label="distance moved",
    runner=_run_cost_model,
    expected_shape="Bottom-up worst case stays below the top-down best case (2h+1).",
))
_register(FigureDefinition(
    key="naive_fallback",
    title="Fraction of bottom-up updates degrading to top-down",
    paper_reference="Section 3.1 (82% observation)",
    x_label="strategy",
    runner=_run_naive_fallback,
    expected_shape="NAIVE falls back far more often than LBU, which falls back more often than GBU.",
))
_register(FigureDefinition(
    key="ablations",
    title="GBU optimisation ablations",
    paper_reference="Section 3.2.1",
    x_label="variant",
    runner=_run_ablations,
    expected_shape="Disabling piggybacking/summary queries/ascent each costs update or query I/O.",
))


def all_figures() -> List[FigureDefinition]:
    """Every registered figure definition, in registration order."""
    return list(_FIGURES.values())


def get_figure(key: str) -> FigureDefinition:
    """Look up a figure definition by key (raises ``KeyError`` with guidance)."""
    try:
        return _FIGURES[key]
    except KeyError:
        raise KeyError(
            f"unknown figure {key!r}; available: {', '.join(sorted(_FIGURES))}"
        ) from None
