"""Experiment harness.

This package regenerates every table and figure of the paper's evaluation
(Section 5) at a configurable scale:

* :mod:`repro.bench.metrics` — the measured quantities (average disk I/O per
  update and per query, CPU time, throughput, update-outcome mix);
* :mod:`repro.bench.experiment` — runs one (index configuration, workload)
  pair through the load / update / query phases and collects metrics;
* :mod:`repro.bench.figures` — one experiment definition per paper figure
  (Figures 5(a)-(h), 6(a)-(h), 7, 8, Table 1, the Section 4 cost analysis
  and the Section 3.1 naive-fallback observation);
* :mod:`repro.bench.reporting` — renders results as aligned text tables, the
  same rows/series the paper plots;
* :mod:`repro.bench.cli` — ``rtree-bottomup-bench``, a command-line front end.

The pytest-benchmark files under ``benchmarks/`` are thin wrappers around
:mod:`repro.bench.figures`; running them writes the same reports the CLI
prints.
"""

from repro.bench.experiment import ExperimentResult, PhaseMetrics, run_experiment, run_figure_point
from repro.bench.figures import FigureDefinition, all_figures, get_figure
from repro.bench.metrics import MetricRow
from repro.bench.reporting import format_table, render_figure_result

__all__ = [
    "ExperimentResult",
    "PhaseMetrics",
    "run_experiment",
    "run_figure_point",
    "FigureDefinition",
    "all_figures",
    "get_figure",
    "MetricRow",
    "format_table",
    "render_figure_result",
]
