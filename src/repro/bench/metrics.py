"""Measured quantities of an experiment run.

The paper reports, per experimental point:

* **Avg Disk I/O (update)** — physical page transfers per update (Figures
  5(a), 5(e), 5(g), 6(a), 6(c), 6(e), 6(g), 7(a));
* **Avg Disk I/O (query)** — physical page transfers per query (the matching
  right-hand figures);
* **Total CPU time** — Figures 5(c)-(d);
* **Throughput (tps)** — Figure 8.

:class:`MetricRow` is one row of a result table: an x-value (the swept
parameter), the strategy, and its measured metrics.  Rows are plain data so
the reporting layer and the pytest benchmarks can both consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class MetricRow:
    """One (x value, strategy) measurement."""

    x_label: str
    x_value: object
    strategy: str
    avg_update_io: Optional[float] = None
    avg_query_io: Optional[float] = None
    update_cpu_seconds: Optional[float] = None
    query_cpu_seconds: Optional[float] = None
    throughput: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary used by the reporting layer and JSON output."""
        row: Dict[str, object] = {
            "x_label": self.x_label,
            "x": self.x_value,
            "strategy": self.strategy,
        }
        if self.avg_update_io is not None:
            row["update_io"] = round(self.avg_update_io, 3)
        if self.avg_query_io is not None:
            row["query_io"] = round(self.avg_query_io, 3)
        if self.update_cpu_seconds is not None:
            row["update_cpu_s"] = round(self.update_cpu_seconds, 4)
        if self.query_cpu_seconds is not None:
            row["query_cpu_s"] = round(self.query_cpu_seconds, 4)
        if self.throughput is not None:
            row["throughput_tps"] = round(self.throughput, 1)
        for key, value in self.extras.items():
            row[key] = round(value, 4) if isinstance(value, float) else value
        return row
