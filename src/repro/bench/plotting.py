"""ASCII charts for experiment series.

The paper presents its results as line charts; the harness reports exact
numbers as tables (:mod:`repro.bench.reporting`), and this module adds a
terminal-friendly chart so the *shape* of a figure — who is on top, where
lines cross — can be seen at a glance without a plotting stack.

Charts are deliberately simple: one row per (x value, strategy), a horizontal
bar scaled to the maximum of the plotted metric, and the numeric value at the
end of the bar.  ``rtree-bottomup-bench <figure> --chart`` appends them to the
textual report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.metrics import MetricRow
from repro.bench.reporting import pivot_by_strategy

#: Metrics that can be charted, with their human-readable axis label.
CHARTABLE_METRICS = {
    "avg_update_io": "avg disk I/O per update",
    "avg_query_io": "avg disk I/O per query",
    "throughput": "throughput (tps)",
}


def horizontal_bar_chart(
    rows: Sequence[MetricRow],
    metric: str = "avg_update_io",
    width: int = 40,
    strategies: Optional[Sequence[str]] = None,
) -> str:
    """Render *metric* across the rows as a horizontal bar chart.

    Returns an empty string when no row carries the metric (e.g. asking for
    throughput on an I/O figure), so callers can simply concatenate the
    result.
    """
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    pivot = pivot_by_strategy(rows, metric)
    if not pivot:
        return ""

    if strategies is None:
        seen: List[str] = []
        for values in pivot.values():
            for name in values:
                if name not in seen:
                    seen.append(name)
        strategies = seen

    maximum = max(
        value
        for values in pivot.values()
        for name, value in values.items()
        if name in strategies
    )
    if maximum <= 0:
        return ""

    label = CHARTABLE_METRICS.get(metric, metric)
    x_width = max(len(str(x)) for x in pivot) + 2
    name_width = max(len(name) for name in strategies) + 1

    lines = [f"[{label}]  (full bar = {maximum:g})"]
    for x_value in pivot:
        values = pivot[x_value]
        for position, name in enumerate(strategies):
            if name not in values:
                continue
            value = values[name]
            bar = "#" * max(1, round(width * value / maximum))
            x_label = str(x_value) if position == 0 else ""
            lines.append(
                f"{x_label:<{x_width}}{name:<{name_width}}|{bar:<{width}} {value:g}"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def chart_all_metrics(rows: Sequence[MetricRow], width: int = 40) -> str:
    """Concatenate charts for every chartable metric present in *rows*."""
    sections: List[str] = []
    for metric in CHARTABLE_METRICS:
        chart = horizontal_bar_chart(rows, metric=metric, width=width)
        if chart:
            sections.append(chart)
    return "\n".join(sections)


def series_summary(rows: Sequence[MetricRow], metric: str = "avg_update_io") -> Dict[str, Dict[str, float]]:
    """Per-strategy min/max/mean of *metric* — a compact numeric digest.

    Used by the CLI's chart mode and convenient in notebooks/tests when only
    the envelope of a series matters.
    """
    pivot = pivot_by_strategy(rows, metric)
    collected: Dict[str, List[float]] = {}
    for values in pivot.values():
        for name, value in values.items():
            collected.setdefault(name, []).append(value)
    return {
        name: {
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
        }
        for name, values in collected.items()
    }
