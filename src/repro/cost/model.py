"""Cost formulas from Section 4.

The data space is the unit square and object movement distances are bounded
by sqrt(2).  The model uses three ingredients:

* **Lemma 1** — a point falls in a window of size ``x * y`` with probability
  ``x * y``.
* **Lemma 2** — two windows of sizes ``(x1, y1)`` and ``(x2, y2)`` placed
  uniformly in the unit square overlap with probability
  ``min(1, (x1 + x2) * (y1 + y2))``.
* **Theorem 1** — the expected number of node accesses of a window query is
  the sum over all nodes of the probability that the node's MBR overlaps the
  query window.

From these the model derives:

* the cost of a **top-down update** — one query-shaped descent to find the
  old entry, plus the insert descent and the leaf write
  (``C_td = DA(query) + height + 1`` in the paper's accounting);
* the cost of a **bottom-up update** as a function of the distance *d* the
  object moved (Section 4.2's three cases: still inside the leaf MBR,
  extendable, or requiring a sibling/ascent), with and without the summary
  structure's direct access table.

The formulas are intentionally simple — the point of Section 4 (and of the
corresponding benchmark here) is the *bound*: even the worst bottom-up case
does not exceed the best top-down case for realistic tree heights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Sequence, Tuple

from repro.rtree.tree import RTree


def window_overlap_probability(
    width_a: float, height_a: float, width_b: float, height_b: float
) -> float:
    """Lemma 2: probability that two uniformly placed windows overlap."""
    for value in (width_a, height_a, width_b, height_b):
        if value < 0:
            raise ValueError("window dimensions must be non-negative")
    return min(1.0, (width_a + width_b) * (height_a + height_b))


@dataclass(frozen=True)
class TreeShape:
    """The node-size statistics the cost formulas need.

    ``node_extents[level]`` lists the (width, height) of every node MBR at
    that level (level 0 = leaves).  ``height`` is the number of levels.
    """

    height: int
    node_extents: Tuple[Tuple[Tuple[float, float], ...], ...]

    @classmethod
    def from_tree(cls, tree: RTree) -> "TreeShape":
        """Measure the shape of an existing tree (no I/O charged)."""
        per_level: Dict[int, List[Tuple[float, float]]] = {}
        for node, _parent in tree.iter_nodes():
            if not node.entries:
                continue
            mbr = node.mbr()
            per_level.setdefault(node.level, []).append((mbr.width, mbr.height))
        height = tree.height
        extents = tuple(
            tuple(per_level.get(level, ())) for level in range(height)
        )
        return cls(height=height, node_extents=extents)

    def average_leaf_extent(self) -> Tuple[float, float]:
        """Average leaf MBR width and height."""
        leaves = self.node_extents[0] if self.node_extents else ()
        if not leaves:
            return (0.0, 0.0)
        width = sum(w for w, _ in leaves) / len(leaves)
        height = sum(h for _, h in leaves) / len(leaves)
        return (width, height)

    def nodes_at_level(self, level: int) -> int:
        if level < 0 or level >= len(self.node_extents):
            return 0
        return len(self.node_extents[level])


def expected_query_node_accesses(
    shape: TreeShape, query_width: float, query_height: float
) -> float:
    """Theorem 1: expected node accesses of a window query of the given size."""
    total = 0.0
    for level_extents in shape.node_extents:
        for width, height in level_extents:
            total += window_overlap_probability(width, height, query_width, query_height)
    return total


@dataclass(frozen=True)
class TopDownCostModel:
    """Expected cost of a top-down update (Section 4.1)."""

    shape: TreeShape

    def locate_cost(self, target_width: float = 0.0, target_height: float = 0.0) -> float:
        """Expected node accesses of the delete's FindLeaf descent.

        A deletion searches with a degenerate (point-sized) window; the
        formula still charges every node whose MBR may contain the point.
        """
        return expected_query_node_accesses(self.shape, target_width, target_height)

    def update_cost(self) -> float:
        """Total expected I/O of a top-down update.

        Locate-and-delete descent, plus the insert descent (one path of
        ``height`` nodes in the best case), plus the leaf write the paper
        adds explicitly.
        """
        return self.locate_cost() + self.shape.height + 1.0

    def best_case_cost(self) -> float:
        """The paper's best case: a single root-to-leaf path plus the write.

        ``C = 2 * height + 1`` — one descent of ``height`` node reads for the
        delete, the same for the insert, plus writing the leaf.
        """
        return 2.0 * self.shape.height + 1.0


@dataclass(frozen=True)
class BottomUpCostModel:
    """Expected cost of a bottom-up update as a function of distance moved (Section 4.2)."""

    shape: TreeShape
    epsilon: float = 0.003
    use_direct_access_table: bool = True

    # I/O constants from the paper's case analysis.
    COST_IN_PLACE: ClassVar[float] = 3.0          # hash probe + leaf read + leaf write
    COST_EXTEND: ClassVar[float] = 4.0            # + parent read
    COST_SIBLING: ClassVar[float] = 6.0           # + sibling read/write
    COST_ASCEND_WITH_TABLE: ClassVar[float] = 7.0  # worst case with the direct access table

    def probability_within_leaf(self, distance: float) -> float:
        """Probability the new position stays inside the leaf MBR.

        The paper's worst case puts the object at a corner of its leaf MBR
        and lets it move a distance *d* in a random direction; the chance of
        staying inside is roughly the fraction of directions that point into
        the MBR, attenuated by how far *d* is relative to the leaf extent.
        """
        width, height = self.shape.average_leaf_extent()
        if width <= 0 or height <= 0:
            return 0.0
        if distance <= 0:
            return 1.0
        # Fraction of the quarter-plane of directions that stays inside, for
        # each axis independently, bounded to [0, 1].
        fraction_x = max(0.0, 1.0 - distance / max(width, 1e-12))
        fraction_y = max(0.0, 1.0 - distance / max(height, 1e-12))
        return 0.25 * (1.0 + fraction_x) * (1.0 + fraction_y)

    def probability_extendable(self, distance: float) -> float:
        """Probability the ε-extension suffices when the object left its leaf MBR."""
        if distance <= 0:
            return 1.0
        return max(0.0, min(1.0, self.epsilon / distance))

    def update_cost(self, distance: float) -> float:
        """Expected I/O of a bottom-up update for movement distance *distance*."""
        p_in = self.probability_within_leaf(distance)
        p_out = 1.0 - p_in
        p_extend = self.probability_extendable(distance)
        escalate_cost = (
            self.COST_ASCEND_WITH_TABLE
            if self.use_direct_access_table
            else self.COST_SIBLING + self.shape.height - 2
        )
        return (
            p_in * self.COST_IN_PLACE
            + p_out * p_extend * self.COST_EXTEND
            + p_out * (1.0 - p_extend) * escalate_cost
        )

    def worst_case_cost(self) -> float:
        """Upper bound of the bottom-up update cost (object moved the maximum distance)."""
        return self.update_cost(math.sqrt(2.0))

    def cost_curve(self, distances: Sequence[float]) -> List[Tuple[float, float]]:
        """``(distance, expected cost)`` pairs for plotting/reporting."""
        return [(distance, self.update_cost(distance)) for distance in distances]
