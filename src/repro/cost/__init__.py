"""Analytical cost model (Section 4 of the paper).

The paper compares the worst-case cost of a bottom-up update with the
best-case cost of a top-down update and concludes that the former is bounded
by the latter.  :mod:`repro.cost.model` implements those formulas so that the
benchmark harness can place the analytical curves next to the measured
averages (``benchmarks/bench_cost_model.py``).
"""

from repro.cost.model import (
    BottomUpCostModel,
    TopDownCostModel,
    TreeShape,
    expected_query_node_accesses,
    window_overlap_probability,
)

__all__ = [
    "TreeShape",
    "TopDownCostModel",
    "BottomUpCostModel",
    "expected_query_node_accesses",
    "window_overlap_probability",
]
