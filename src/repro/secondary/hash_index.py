"""Hash table mapping object ids to the leaf page that stores them.

The paper's bottom-up strategies assume a secondary index on object IDs that
gives direct access to the R-tree leaf containing an object (Figure 2).  The
cost analysis in Section 4.2 charges **one disk read per probe** ("an
additional I/O to read the hash index giving direct access to the leaf
node"), so by default every successful :meth:`ObjectHashIndex.lookup` bumps
the shared ``hash_index_reads`` counter.  Applications that pin the hash
table in memory can disable the charge with ``charge_io=False``; the
benchmark harness keeps the paper's accounting.

Maintenance is free of I/O: the index is an in-memory dictionary that updates
itself from the leaf-write events emitted by the tree, which is exactly how
the paper treats it (only the R-tree pages count towards the I/O metric; the
hash index is charged per probe, not per maintenance operation).
"""

from __future__ import annotations

from itertools import repeat
from typing import Dict, Optional

from repro.rtree.node import Node
from repro.rtree.observers import TreeObserver
from repro.rtree.tree import RTree
from repro.storage.stats import IOStatistics


class ObjectHashIndex(TreeObserver):
    """Object id -> leaf page id map maintained from tree events.

    Parameters
    ----------
    stats:
        Shared I/O counters used to charge lookups.
    charge_io:
        When ``True`` (default) each lookup adds one ``hash_index_reads``,
        matching the paper's cost model.
    """

    def __init__(self, stats: Optional[IOStatistics] = None, charge_io: bool = True) -> None:
        self.stats = stats if stats is not None else IOStatistics()
        self.charge_io = charge_io
        self._leaf_of: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build_from_tree(
        cls,
        tree: RTree,
        stats: Optional[IOStatistics] = None,
        charge_io: bool = True,
    ) -> "ObjectHashIndex":
        """Create an index, populate it from *tree*, and register it as observer.

        Population uses :meth:`RTree.peek_node` traversal (no I/O charged):
        building the hash table is part of index construction, which happens
        before the measured phase of every experiment.
        """
        index = cls(stats=stats if stats is not None else tree.disk.stats, charge_io=charge_io)
        for leaf in tree.leaf_nodes():
            for entry in leaf.entries:
                index._leaf_of[entry.child] = leaf.page_id
        tree.register_observer(index)
        return index

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, oid: int) -> Optional[int]:
        """Return the leaf page id currently holding *oid* (or ``None``).

        Charged as one disk read when ``charge_io`` is enabled.
        """
        if self.charge_io:
            self.stats.hash_index_reads += 1
        return self._leaf_of.get(oid)

    def peek(self, oid: int) -> Optional[int]:
        """Uncharged lookup for tests and validators."""
        return self._leaf_of.get(oid)

    def __contains__(self, oid: int) -> bool:
        return oid in self._leaf_of

    def __len__(self) -> int:
        return len(self._leaf_of)

    # ------------------------------------------------------------------
    # TreeObserver interface
    # ------------------------------------------------------------------
    def on_node_written(self, node: Node) -> None:
        """Record the current leaf of every object stored in a written leaf."""
        if not node.is_leaf:
            return
        # dict.update over a zip runs the per-object loop in C; leaf writes
        # are the single most frequent observer event on the update path.
        self._leaf_of.update(zip(node.child_ids(), repeat(node.page_id)))

    def on_node_deleted(self, node: Node) -> None:
        """Forget objects whose recorded leaf was deleted.

        Objects that were re-homed before the deletion still point at their
        new leaf (the new leaf's write event already overwrote the mapping),
        so only mappings still naming the deleted page are dropped — those
        objects are about to be re-inserted by CondenseTree and will be
        re-recorded when their new leaf is written.
        """
        if not node.is_leaf:
            return
        for child in node.child_ids():
            if self._leaf_of.get(child) == node.page_id:
                del self._leaf_of[child]

    def on_object_removed(self, oid: int) -> None:
        self._leaf_of.pop(oid, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def consistency_errors(self, tree: RTree) -> list:
        """Return a list of inconsistencies between the index and *tree*.

        Used by tests: an empty list means every object id maps to the leaf
        that actually stores it and no stale ids remain.
        """
        errors = []
        actual: Dict[int, int] = {}
        for leaf in tree.leaf_nodes():
            for entry in leaf.entries:
                actual[entry.child] = leaf.page_id
        for oid, page in actual.items():
            recorded = self._leaf_of.get(oid)
            if recorded != page:
                errors.append(f"object {oid}: index says {recorded}, tree says {page}")
        for oid in self._leaf_of:
            if oid not in actual:
                errors.append(f"object {oid}: present in index but not in tree")
        return errors
