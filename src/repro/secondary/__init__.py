"""Secondary object-ID index.

Both bottom-up strategies reach the leaf holding an object directly through
"an existing secondary identity index such as a hash table" (Sections 3.1 and
3.2 of the paper).  :class:`~repro.secondary.hash_index.ObjectHashIndex`
implements that index as a tree observer so it stays consistent with every
leaf write, and charges one disk read per probe — the accounting used by the
paper's cost analysis (Section 4.2).
"""

from repro.secondary.hash_index import ObjectHashIndex

__all__ = ["ObjectHashIndex"]
