"""The summary structure: direct access table + leaf bit vector.

:class:`SummaryStructure` bundles the two components of Section 3.2, keeps
them consistent with the R-tree by listening to its observer events, and
exposes the operations GBU needs:

* :meth:`root_mbr` — the MBR of the whole index, checked first by
  Algorithm 2 ("if newLocation lies outside rootMBR then issue a top-down
  update").
* :meth:`find_parent` — Algorithm 3: the lowest ancestor of a node whose MBR
  contains the new location, limited by the level threshold.
* :meth:`parent_entry_of_leaf` / :meth:`sibling_leaves` — parent and sibling
  information without disk access.
* :meth:`is_leaf_full` — the bit-vector lookup used when choosing a sibling.
* :meth:`path_from_root` — the chain of internal-node page ids from the root
  down to a node, used by :meth:`RTree.insert_at_subtree` so that a rare
  split above the insertion anchor can still propagate correctly.

All methods are pure main-memory operations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.geometry import Point, Rect
from repro.rtree.node import Node
from repro.rtree.observers import TreeObserver
from repro.rtree.tree import RTree
from repro.summary.bitvector import LeafBitVector
from repro.summary.direct_access import DirectAccessEntry, DirectAccessTable


class SummaryStructure(TreeObserver):
    """Main-memory summary of an R-tree (direct access table + bit vector)."""

    def __init__(self, tree: RTree) -> None:
        self.tree = tree
        self.table = DirectAccessTable()
        self.leaf_bits = LeafBitVector()
        self.root_page_id = tree.root_page_id
        self.height = tree.height

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build_from_tree(cls, tree: RTree) -> "SummaryStructure":
        """Populate a summary from *tree* and register it as an observer.

        Bootstrapping walks the tree with :meth:`RTree.peek_node`, so it does
        not disturb the I/O counters (the summary is built once, before the
        measured phase, exactly like the secondary hash index).
        """
        summary = cls(tree)
        summary.rebuild_from_tree()
        tree.register_observer(summary)
        return summary

    def rebuild_from_tree(self) -> None:
        """Bulk refresh: re-derive the whole summary from the live tree.

        One uncharged traversal replaces the direct access table and the
        leaf bit vector wholesale, which also drops any entry for a node no
        longer in the tree.  This is how the summary is bootstrapped and how
        it can be re-synchronised after bulk operations that bypass the
        observer protocol (the incremental observer events keep it
        consistent during normal and batch execution, so calling this is
        never *required* there — it is the recovery and bulk-load path).
        Maintenance counters restart from zero, as after a fresh bootstrap.
        """
        self.table = DirectAccessTable()
        self.leaf_bits = LeafBitVector()
        self.root_page_id = self.tree.root_page_id
        self.height = self.tree.height
        for node, _parent in self.tree.iter_nodes():
            self._record_node(node)

    # ------------------------------------------------------------------
    # TreeObserver interface
    # ------------------------------------------------------------------
    def on_node_written(self, node: Node) -> None:
        self._record_node(node)

    def on_node_deleted(self, node: Node) -> None:
        if node.is_leaf:
            self.leaf_bits.forget(node.page_id)
        else:
            self.table.remove(node.page_id)

    def on_root_changed(self, root_page_id: int, height: int) -> None:
        self.root_page_id = root_page_id
        self.height = height

    def _record_node(self, node: Node) -> None:
        if node.is_leaf:
            self.leaf_bits.set_fullness(
                node.page_id, len(node) >= self.tree.leaf_capacity
            )
            return
        if not len(node):
            # An internal node is never legitimately empty; skip rather than
            # store an entry without an MBR (the node is about to be removed).
            return
        self.table.upsert(
            page_id=node.page_id,
            level=node.level,
            mbr=node.mbr(),
            child_page_ids=node.child_ids(),
        )

    # ------------------------------------------------------------------
    # Queries used by GBU
    # ------------------------------------------------------------------
    def root_entry(self) -> Optional[DirectAccessEntry]:
        """Direct-access entry of the root, or ``None`` when the root is a leaf."""
        return self.table.get(self.root_page_id)

    def root_mbr(self) -> Optional[Rect]:
        """MBR of the whole index from the summary (``None`` if root is a leaf)."""
        entry = self.root_entry()
        return entry.mbr if entry is not None else None

    def is_leaf_full(self, leaf_page_id: int) -> bool:
        return self.leaf_bits.is_full(leaf_page_id)

    def parent_entry_of_leaf(self, leaf_page_id: int) -> Optional[DirectAccessEntry]:
        """Entry of the level-1 node whose children include *leaf_page_id*."""
        return self.table.parent_of(leaf_page_id)

    def sibling_leaves(self, leaf_page_id: int) -> List[int]:
        """Page ids of the other leaves under the same parent."""
        parent = self.parent_entry_of_leaf(leaf_page_id)
        if parent is None:
            return []
        return [child for child in parent.child_page_ids if child != leaf_page_id]

    def path_from_root(self, page_id: int) -> List[int]:
        """Internal-node page ids from the root down to (excluding) *page_id*.

        Returns an empty list when *page_id* is the root itself.  The chain is
        derived entirely from the direct access table.
        """
        chain: List[int] = []
        current = page_id
        guard = 0
        while current != self.root_page_id:
            parent = self.table.parent_of(current)
            if parent is None:
                break
            chain.append(parent.page_id)
            current = parent.page_id
            guard += 1
            if guard > 1000:  # defensive: a cycle here would mean a corrupted table
                raise RuntimeError("cycle detected in direct access table parent chain")
        chain.reverse()
        return chain

    def find_parent(
        self,
        node_page_id: int,
        new_location: Point,
        level_threshold: Optional[int] = None,
    ) -> Tuple[Optional[int], List[int]]:
        """Algorithm 3 (*FindParent*): lowest ancestor whose MBR covers the target.

        Starting from the parent of *node_page_id* (level 1 when the node is a
        leaf) and ascending one level at a time, return the page id of the
        first ancestor whose MBR contains *new_location*.  The ascent is
        limited to *level_threshold* levels above the leaf (the paper's
        parameter ℓ); when no ancestor within the threshold qualifies, the
        root is returned if the threshold allows reaching it, otherwise
        ``None`` (the caller falls back to a top-down update).

        Returns ``(ancestor_page_id, ancestor_path)`` where *ancestor_path*
        lists the internal-node page ids strictly above the ancestor, root
        first — exactly the argument :meth:`RTree.insert_at_subtree` expects.
        """
        if level_threshold is None:
            level_threshold = self.height - 1

        ancestor: Optional[DirectAccessEntry] = self.table.parent_of(node_page_id)
        while ancestor is not None:
            if ancestor.level > level_threshold:
                return None, []
            if ancestor.mbr.contains_point(new_location):
                return ancestor.page_id, self.path_from_root(ancestor.page_id)
            if ancestor.page_id == self.root_page_id:
                # The root is the last resort; its MBR may not contain the
                # location (the object moved outside the indexed space), in
                # which case inserting at the root is still correct — it is
                # what a top-down insert would do.
                return ancestor.page_id, []
            ancestor = self.table.parent_of(ancestor.page_id)
        return None, []

    # ------------------------------------------------------------------
    # Sizing / reporting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate main-memory footprint of the summary structure."""
        entry_size = self.tree.layout.direct_access_entry_size
        return self.table.size_bytes(entry_size) + self.leaf_bits.size_bytes()

    def size_ratio_to_tree(self) -> float:
        """Summary size as a fraction of the R-tree's on-disk size."""
        counts = self.tree.node_count()
        tree_bytes = (counts["leaf"] + counts["internal"]) * self.tree.layout.page_size
        if tree_bytes == 0:
            return 0.0
        return self.size_bytes() / tree_bytes

    def maintenance_counters(self) -> dict:
        """Counters describing how much maintenance the table has seen."""
        return {
            "mbr_updates": self.table.mbr_updates,
            "entry_insertions": self.table.entry_insertions,
            "entry_removals": self.table.entry_removals,
        }

    # ------------------------------------------------------------------
    # Consistency checking (tests)
    # ------------------------------------------------------------------
    def consistency_errors(self) -> List[str]:
        """Compare the summary against the live tree; return any mismatches."""
        errors: List[str] = []
        internal_pages = set()
        leaf_pages = set()
        for node, _parent in self.tree.iter_nodes():
            if node.is_leaf:
                leaf_pages.add(node.page_id)
                expected_full = len(node.entries) >= self.tree.leaf_capacity
                if not self.leaf_bits.is_tracked(node.page_id):
                    errors.append(f"leaf {node.page_id} missing from bit vector")
                elif self.leaf_bits.is_full(node.page_id) != expected_full:
                    errors.append(f"leaf {node.page_id} fullness bit is stale")
                continue
            internal_pages.add(node.page_id)
            entry = self.table.get(node.page_id)
            if entry is None:
                errors.append(f"internal node {node.page_id} missing from direct access table")
                continue
            if entry.level != node.level:
                errors.append(f"node {node.page_id}: table level {entry.level} != {node.level}")
            if entry.mbr != node.mbr():
                errors.append(f"node {node.page_id}: table MBR is stale")
            if sorted(entry.child_page_ids) != sorted(node.child_ids()):
                errors.append(f"node {node.page_id}: table children are stale")
        for page_id in list(self.table._entries):
            if page_id not in internal_pages:
                errors.append(f"table entry {page_id} refers to a node no longer in the tree")
        for page_id in self.leaf_bits:
            if page_id not in leaf_pages:
                errors.append(f"bit vector tracks leaf {page_id} no longer in the tree")
        if self.root_page_id != self.tree.root_page_id:
            errors.append("summary root page id is stale")
        return errors
