"""Summary-assisted window queries.

Section 3.2 notes that the summary structure can also speed up querying:
"We first check for overlap with the root entry in the direct access table
and then proceed to the next level of internal node entries, looking for
overlaps until the level above the leaf is reached.  Equipped with knowledge
of which index nodes above the leaf level to read from disk, we carry on with
the query as usual."

:func:`summary_guided_range_query` implements that: the descent through the
internal levels happens entirely in memory on the direct access table, so the
only pages read from disk are the level-1 nodes (parents of leaves) that
overlap the window — needed for their children's MBRs — and the overlapping
leaves themselves.  The answer set is identical to
:meth:`repro.rtree.tree.RTree.range_query`; only the number of internal-node
reads differs.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.geometry import Rect
from repro.rtree.tree import RTree
from repro.summary.structure import SummaryStructure


def summary_guided_range_query(
    tree: RTree, summary: SummaryStructure, window: Rect
) -> List[int]:
    """Answer the window query *window* using the summary structure.

    Returns the object ids whose MBRs intersect *window*.
    """
    return list(iter_summary_guided_range_query(tree, summary, window))


def iter_summary_guided_range_query(
    tree: RTree, summary: SummaryStructure, window: Rect
) -> Iterator[int]:
    """Stream the summary-guided window query's hits lazily.

    The in-memory descent over the direct access table runs up front (it
    costs no I/O); the disk phase — reading qualifying level-1 nodes and
    leaves — advances only as the iterator is consumed.  The yield order is
    exactly :func:`summary_guided_range_query`'s materialised order.
    """
    root_entry = summary.root_entry()
    if root_entry is None:
        # The root is a leaf: there are no internal nodes to skip.
        yield from tree.iter_range_query(window)
        return

    if not root_entry.mbr.intersects(window):
        return

    # In-memory descent: find the level-1 nodes (parents of leaves) that can
    # contain qualifying leaves, without reading any internal node from disk.
    frontier = [root_entry]
    while frontier and frontier[0].level > 1:
        next_frontier = []
        for entry in frontier:
            for child_page in entry.child_page_ids:
                child_entry = summary.table.get(child_page)
                if child_entry is not None and child_entry.mbr.intersects(window):
                    next_frontier.append(child_entry)
        frontier = next_frontier

    # Disk phase: read the qualifying level-1 nodes to obtain leaf MBRs, then
    # the qualifying leaves to obtain the objects.
    for entry in frontier:
        level1_node = tree.read_node(entry.page_id)
        for child_page in level1_node.intersecting_children(window):
            leaf = tree.read_node(child_page)
            yield from leaf.intersecting_children(window)
