"""Leaf-fullness bit vector.

Part 2 of the summary structure: one bit per R-tree leaf indicating whether
the leaf is full.  GBU consults it when it considers shifting an object to a
sibling leaf — "the bit vector for the R-tree leaf nodes in the summary
structure indicates whether sibling nodes are full.  This eliminates the need
for additional disk accesses to find a suitable sibling" (Section 3.2).
"""

from __future__ import annotations

from typing import Dict, Iterator


class LeafBitVector:
    """Tracks which leaf pages are full.

    The structure is conceptually a bit vector indexed by leaf offset; since
    the simulated disk hands out arbitrary page ids, it is implemented as a
    mapping from leaf page id to a boolean, with the same O(1) update and
    lookup cost and the same (negligible) memory footprint per leaf.
    """

    def __init__(self) -> None:
        self._full: Dict[int, bool] = {}

    # -- maintenance ----------------------------------------------------------
    def set_fullness(self, leaf_page_id: int, is_full: bool) -> None:
        """Record whether *leaf_page_id* is full."""
        self._full[leaf_page_id] = is_full

    def forget(self, leaf_page_id: int) -> None:
        """Remove *leaf_page_id* (the leaf was deleted)."""
        self._full.pop(leaf_page_id, None)

    # -- queries -----------------------------------------------------------
    def is_full(self, leaf_page_id: int) -> bool:
        """``True`` if the leaf is known to be full.

        Unknown leaves are reported as full: the conservative answer makes
        GBU skip them rather than read them from disk, which can never
        violate correctness (it only forgoes an optimisation).
        """
        return self._full.get(leaf_page_id, True)

    def is_tracked(self, leaf_page_id: int) -> bool:
        return leaf_page_id in self._full

    def __len__(self) -> int:
        return len(self._full)

    def __iter__(self) -> Iterator[int]:
        return iter(self._full)

    @property
    def full_count(self) -> int:
        """Number of leaves currently marked full."""
        return sum(1 for is_full in self._full.values() if is_full)

    def size_bytes(self) -> int:
        """Size of the conceptual bit vector in bytes (one bit per leaf)."""
        return (len(self._full) + 7) // 8
