"""Direct access table over the R-tree's internal nodes.

Part 1 of the summary structure (Section 3.2): one compact entry per internal
node holding the node's MBR, its level, and the page ids of its children.
Entries are organised by level, mirroring the paper's contiguous per-level
layout, so the `FindParent` ascent can scan "the parent entries in level l".

The table deliberately excludes leaf nodes and the individual child MBRs —
that is what keeps it small (the paper reports a table entry at roughly 20 %
of a node's size and the whole table at roughly 0.16 % of the R-tree).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.geometry import Point, Rect


class DirectAccessEntry:
    """Summary entry for one internal R-tree node."""

    __slots__ = ("page_id", "level", "mbr", "child_page_ids")

    def __init__(self, page_id: int, level: int, mbr: Rect, child_page_ids: List[int]) -> None:
        self.page_id = page_id
        self.level = level
        self.mbr = mbr
        self.child_page_ids = list(child_page_ids)

    def contains_child(self, page_id: int) -> bool:
        return page_id in self.child_page_ids

    def __repr__(self) -> str:
        return (
            f"DirectAccessEntry(page={self.page_id}, level={self.level}, "
            f"children={len(self.child_page_ids)})"
        )


class DirectAccessTable:
    """Mapping from internal-node page id to its summary entry, organised by level."""

    def __init__(self) -> None:
        self._entries: Dict[int, DirectAccessEntry] = {}
        self._by_level: Dict[int, List[int]] = {}
        # Derived reverse mapping child page id -> parent page id.  The paper
        # finds parents by scanning the level's contiguous entries; the
        # reverse map returns the same answer in O(1) (see ``scan_parent_of``
        # for the literal scan, kept for tests and documentation).
        self._parent_of: Dict[int, int] = {}
        self.mbr_updates = 0
        self.entry_insertions = 0
        self.entry_removals = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def upsert(self, page_id: int, level: int, mbr: Rect, child_page_ids: List[int]) -> None:
        """Insert or update the entry for internal node *page_id*."""
        existing = self._entries.get(page_id)
        if existing is None:
            entry = DirectAccessEntry(page_id, level, mbr, child_page_ids)
            self._entries[page_id] = entry
            self._by_level.setdefault(level, []).append(page_id)
            self.entry_insertions += 1
        else:
            if existing.level != level:
                self._by_level[existing.level].remove(page_id)
                self._by_level.setdefault(level, []).append(page_id)
                existing.level = level
            if existing.mbr != mbr:
                self.mbr_updates += 1
            for child in existing.child_page_ids:
                if self._parent_of.get(child) == page_id:
                    del self._parent_of[child]
            existing.mbr = mbr
            existing.child_page_ids = list(child_page_ids)
            entry = existing
        for child in child_page_ids:
            self._parent_of[child] = page_id

    def remove(self, page_id: int) -> None:
        """Remove the entry for *page_id* (the internal node was deleted)."""
        entry = self._entries.pop(page_id, None)
        if entry is None:
            return
        self._by_level[entry.level].remove(page_id)
        if not self._by_level[entry.level]:
            del self._by_level[entry.level]
        for child in entry.child_page_ids:
            if self._parent_of.get(child) == page_id:
                del self._parent_of[child]
        self.entry_removals += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, page_id: int) -> Optional[DirectAccessEntry]:
        return self._entries.get(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def levels(self) -> List[int]:
        """Levels present in the table, ascending (2 is the lowest internal
        level with internal children; 1 is the leaf-parent level)."""
        return sorted(self._by_level)

    def entries_at_level(self, level: int) -> Iterator[DirectAccessEntry]:
        """Iterate over the entries of internal nodes at *level*."""
        for page_id in self._by_level.get(level, []):
            yield self._entries[page_id]

    def parent_of(self, page_id: int) -> Optional[DirectAccessEntry]:
        """Entry of the internal node whose child list contains *page_id*."""
        parent_page = self._parent_of.get(page_id)
        if parent_page is None:
            return None
        return self._entries.get(parent_page)

    def scan_parent_of(self, page_id: int, level: int) -> Optional[DirectAccessEntry]:
        """Find the parent of *page_id* by scanning the entries at *level*.

        This is the literal lookup of the paper's Algorithm 3 ("for each
        parent entry whose MBR contains node ... if some child offset matches
        node offset").  It returns the same entry as :meth:`parent_of`; tests
        assert the equivalence.
        """
        for entry in self.entries_at_level(level):
            if entry.contains_child(page_id):
                return entry
        return None

    def entries_containing(self, point: Point, level: int) -> List[DirectAccessEntry]:
        """Entries at *level* whose MBR contains *point* (used in tests/ablations)."""
        return [entry for entry in self.entries_at_level(level) if entry.mbr.contains_point(point)]

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def size_bytes(self, entry_size: int) -> int:
        """Approximate memory footprint given the per-entry size in bytes."""
        return len(self._entries) * entry_size
