"""Main-memory summary structure (Section 3.2 of the paper).

The generalized bottom-up strategy keeps the R-tree untouched on disk and
adds a compact, easy-to-maintain main-memory structure consisting of

1. a **direct access table** with one small entry per *internal* node of the
   R-tree (its MBR, level, and child pointers), organised by level, and
2. a **bit vector** over the leaf nodes recording which leaves are full.

The table gives GBU direct access to a node's parent without parent pointers
(`FindParent`, Algorithm 3), the bit vector lets it pick a non-full sibling
without probing sibling pages on disk, and the same table can be used to
answer window queries with fewer internal-node reads.

Everything in this package is main-memory work: it is maintained from the
R-tree's observer events and never performs disk I/O.
"""

from repro.summary.bitvector import LeafBitVector
from repro.summary.direct_access import DirectAccessEntry, DirectAccessTable
from repro.summary.query import (
    iter_summary_guided_range_query,
    summary_guided_range_query,
)
from repro.summary.structure import SummaryStructure

__all__ = [
    "DirectAccessEntry",
    "DirectAccessTable",
    "LeafBitVector",
    "SummaryStructure",
    "iter_summary_guided_range_query",
    "summary_guided_range_query",
]
