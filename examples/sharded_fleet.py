#!/usr/bin/env python
"""Sharded fleet: the same moving-object workload behind a spatial router.

A continental fleet does not fit one index instance; the locality argument
that makes the paper's bottom-up updates cheap also makes spatial sharding
effective — vehicles move short distances between position reports, so
almost every update stays inside one shard and only boundary crossings
migrate.  Both topologies are opened from declarative specs
(:func:`repro.open_index`): the spec is the only thing that differs, the
typed operation surface is identical.  This example drives the identical
seeded workload through

* a single-index spec (``{"kind": "single"}``), and
* a sharded spec over a uniform grid (``{"kind": "sharded", "shards": 8}``),

first per operation (demonstrating drop-in facade interchangeability and
answer equivalence), then under the online concurrent engine at a fixed
client count to compare makespans across shard counts.

Run with::

    python examples/sharded_fleet.py
"""

import repro
from repro import Point
from repro.api import KNN, RangeQuery, Update
from repro.workload import WorkloadGenerator, WorkloadSpec

SPEC = WorkloadSpec(num_objects=4_000, num_updates=4_000, num_queries=40, seed=7)
CLIENTS = 16


def drive(index):
    """Run the seeded workload through any SpatialIndexFacade."""
    generator = WorkloadGenerator(SPEC)
    index.load(generator.initial_objects())
    for oid, _old, new in generator.updates():
        index.execute(Update(oid, new))
    answers = [
        sorted(index.execute(RangeQuery(window)).cursor().all())
        for window in generator.queries()
    ]
    nearest = index.execute(KNN(Point(0.5, 0.5), 5)).cursor().all()
    index.validate()
    return answers, nearest


def main() -> None:
    single = repro.open_index({"kind": "single", "config": {"strategy": "GBU"}})
    sharded = repro.open_index(
        {"kind": "sharded", "shards": 8, "config": {"strategy": "GBU"}}
    )

    print("== drop-in equivalence (per-operation, typed API) ==")
    single_answers = drive(single)
    sharded_answers = drive(sharded)
    print(f"single index : {single.describe()}")
    print(f"sharded index: {sharded.describe()}")
    print(f"identical query + kNN answers: {single_answers == sharded_answers}")
    print(f"cross-shard migrations: {sharded.migrations}")
    print(f"aggregate physical I/O (sharded): {sharded.io_snapshot().total()}")

    print()
    print(f"== concurrent makespan vs. shard count ({CLIENTS} clients) ==")
    for num_shards in (1, 2, 4, 8):
        spec = SPEC.with_overrides(num_updates=0, num_queries=0)
        generator = WorkloadGenerator(spec)
        index = repro.open_index(
            {
                "kind": "sharded",
                "shards": num_shards,
                "config": {"strategy": "TD", "page_size": 256, "buffer_percent": 0.0},
                "engine": {"num_clients": CLIENTS},
            }
        )
        index.load(generator.initial_objects())
        session = index.engine()  # session defaults come from the spec
        result = session.run_mixed(generator, 1_000, update_fraction=1.0)
        print(
            f"  shards={num_shards}: makespan={result.makespan:7.3f}  "
            f"throughput={result.throughput:7.1f} ops/s  "
            f"lock_waits={result.lock_waits:3d}  "
            f"migrations={index.migrations}"
        )


if __name__ == "__main__":
    main()
