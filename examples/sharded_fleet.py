#!/usr/bin/env python
"""Sharded fleet: the same moving-object workload behind a spatial router.

A continental fleet does not fit one index instance; the locality argument
that makes the paper's bottom-up updates cheap also makes spatial sharding
effective — vehicles move short distances between position reports, so
almost every update stays inside one shard and only boundary crossings
migrate.  This example drives the identical seeded mixed workload through

* one :class:`~repro.core.index.MovingObjectIndex`, and
* a :class:`~repro.shard.index.ShardedIndex` over a uniform grid,

first per operation (demonstrating drop-in facade interchangeability and
answer equivalence), then under the online concurrent engine at a fixed
client count to compare makespans across shard counts.

Run with::

    python examples/sharded_fleet.py
"""

from repro import GridPartitioner, IndexConfig, MovingObjectIndex, Point, Rect, ShardedIndex
from repro.workload import WorkloadGenerator, WorkloadSpec

SPEC = WorkloadSpec(num_objects=4_000, num_updates=4_000, num_queries=40, seed=7)
CLIENTS = 16


def drive(index):
    """Run the seeded workload through any SpatialIndexFacade."""
    generator = WorkloadGenerator(SPEC)
    index.load(generator.initial_objects())
    for oid, _old, new in generator.updates():
        index.update(oid, new)
    answers = [sorted(index.range_query(window)) for window in generator.queries()]
    nearest = index.knn(Point(0.5, 0.5), 5)
    index.validate()
    return answers, nearest


def main() -> None:
    single = MovingObjectIndex(IndexConfig(strategy="GBU"))
    sharded = ShardedIndex(
        IndexConfig(strategy="GBU"), partitioner=GridPartitioner.for_shards(8)
    )

    print("== drop-in equivalence (per-operation) ==")
    single_answers = drive(single)
    sharded_answers = drive(sharded)
    print(f"single index : {single.describe()}")
    print(f"sharded index: {sharded.describe()}")
    print(f"identical query + kNN answers: {single_answers == sharded_answers}")
    print(f"cross-shard migrations: {sharded.migrations}")
    print(f"aggregate physical I/O (sharded): {sharded.io_snapshot().total()}")

    print()
    print(f"== concurrent makespan vs. shard count ({CLIENTS} clients) ==")
    for num_shards in (1, 2, 4, 8):
        spec = SPEC.with_overrides(num_updates=0, num_queries=0)
        generator = WorkloadGenerator(spec)
        index = ShardedIndex(
            IndexConfig(strategy="TD", page_size=256, buffer_percent=0.0),
            partitioner=GridPartitioner.for_shards(num_shards),
        )
        index.load(generator.initial_objects())
        session = index.engine(num_clients=CLIENTS)
        result = session.run_mixed(generator, 1_000, update_fraction=1.0)
        print(
            f"  shards={num_shards}: makespan={result.makespan:7.3f}  "
            f"throughput={result.throughput:7.1f} ops/s  "
            f"lock_waits={result.lock_waits:3d}  "
            f"migrations={index.migrations}"
        )


if __name__ == "__main__":
    main()
