#!/usr/bin/env python
"""Mixed-workload throughput under concurrent clients (the Figure 8 scenario).

A monitoring service ingests position updates while dashboards issue window
queries; many clients operate concurrently and every operation takes locks
through Dynamic Granular Locking.  This example measures sustained
transactions per second for the three update strategies at different
update/query mixes, using the library's online operation engine: each
virtual client draws from its own stream, every operation predicts its DGL
granule lock scope and executes for real on a deterministic logical clock,
and conflicting operations block and retry — so the numbers reflect actual
interleavings, not a replayed trace.

Run with::

    python examples/mixed_workload_throughput.py
"""

import repro
from repro.workload import WorkloadGenerator, WorkloadSpec

NUM_OBJECTS = 6_000
NUM_OPERATIONS = 1_500
CLIENTS = 16
UPDATE_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
STRATEGIES = ("TD", "LBU", "GBU")


def measure(strategy: str, update_fraction: float) -> float:
    spec = WorkloadSpec(
        num_objects=NUM_OBJECTS,
        num_updates=0,
        num_queries=0,
        seed=11,
        query_max_side=0.15,
    )
    generator = WorkloadGenerator(spec)
    # v2 declarative construction: the spec names the strategy and the
    # session defaults; the generator deals typed operations to the clients.
    index = repro.open_index(
        {
            "config": {"strategy": strategy},
            "engine": {"num_clients": CLIENTS, "time_per_io": 0.01},
        }
    )
    index.load(generator.initial_objects())
    session = index.engine()
    result = session.run_mixed(generator, NUM_OPERATIONS, update_fraction)
    return result.throughput


def main() -> None:
    print(
        f"{NUM_OBJECTS} objects, {NUM_OPERATIONS} operations per point, "
        f"{CLIENTS} concurrent virtual clients (online engine, DGL locking)\n"
    )
    header = "updates%  " + "  ".join(f"{name:>8s}" for name in STRATEGIES)
    print(header)
    print("-" * len(header))
    for fraction in UPDATE_FRACTIONS:
        cells = []
        for strategy in STRATEGIES:
            cells.append(f"{measure(strategy, fraction):8.1f}")
        print(f"{int(fraction * 100):7d}%  " + "  ".join(cells))
    print(
        "\nthroughput in operations/second of logical time; higher is "
        "better.  As in the paper, the top-down approach loses throughput "
        "as the update share grows while the generalized bottom-up "
        "approach holds or gains — here because its operations genuinely "
        "lock fewer granules and perform less I/O while interleaving."
    )


if __name__ == "__main__":
    main()
