#!/usr/bin/env python
"""Quickstart: index moving objects and keep them fresh with bottom-up updates.

This example builds a small moving-object index with the paper's generalized
bottom-up update strategy (GBU), loads a few thousand objects, applies a burst
of position updates, and runs a handful of window queries — printing the disk
I/O the index performed along the way, which is the metric the paper's whole
evaluation is about.

Run with::

    python examples/quickstart.py
"""

import random

from repro import IndexConfig, MovingObjectIndex, Point, Rect


def main() -> None:
    rng = random.Random(42)

    # 1. Configure the index.  The defaults follow the paper: 1 KB pages, a
    #    buffer sized at 1 % of the database, GBU updates with epsilon 0.003.
    config = IndexConfig(strategy="GBU")
    index = MovingObjectIndex(config)

    # 2. Load an initial population of objects (e.g. vehicles reporting GPS
    #    positions inside a city modelled as the unit square).
    objects = [(oid, Point(rng.random(), rng.random())) for oid in range(5_000)]
    index.load(objects)
    print("loaded:", index.describe())

    # 3. Stream position updates.  Each object drifts a small random step —
    #    the locality-preserving movement the bottom-up strategy exploits.
    num_updates = 20_000
    for _ in range(num_updates):
        oid = rng.randrange(5_000)
        position = index.position_of(oid)
        new_position = Point(
            min(1.0, max(0.0, position.x + rng.uniform(-0.02, 0.02))),
            min(1.0, max(0.0, position.y + rng.uniform(-0.02, 0.02))),
        )
        index.update(oid, new_position)

    update_io = index.stats.total_physical_io
    print(f"updates: {num_updates}, avg disk I/O per update: {update_io / num_updates:.2f}")
    print("update outcome mix:", index.strategy.outcome_fractions())

    # 4. Query the fresh index: which objects are currently inside a window?
    snapshot = index.io_snapshot()
    windows = [
        Rect(0.10, 0.10, 0.20, 0.20),
        Rect(0.45, 0.45, 0.55, 0.55),
        Rect(0.80, 0.05, 0.95, 0.25),
    ]
    for window in windows:
        hits = index.range_query(window)
        print(f"objects in {window}: {len(hits)}")
    query_io = index.stats.delta_since(snapshot).total_physical_io
    print(f"avg disk I/O per query: {query_io / len(windows):.2f}")

    # 5. Nearest neighbours of a point of interest.
    nearest = index.knn(Point(0.5, 0.5), k=5)
    print("5 objects nearest to the centre:", [oid for _, oid in nearest])

    # 6. The index can verify its own structural invariants at any time.
    print("validation:", index.validate())


if __name__ == "__main__":
    main()
