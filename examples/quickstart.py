#!/usr/bin/env python
"""Quickstart: index moving objects and keep them fresh with bottom-up updates.

This example uses the typed operation API (v2): the index is opened from one
declarative spec, operations are first-class values (``Update``,
``RangeQuery``, ``KNN``), query results stream through cursors, and batches
return structured reports — while the engine underneath is the paper's
generalized bottom-up update strategy (GBU), measured in disk I/O exactly as
the paper's evaluation measures it.

Run with::

    python examples/quickstart.py
"""

import random

import repro
from repro import Point, Rect
from repro.api import KNN, RangeQuery, Update

SPEC = {
    # The defaults follow the paper: 1 KB pages, a buffer sized at 1 % of
    # the database, GBU updates with epsilon 0.003.
    "kind": "single",
    "config": {"strategy": "GBU"},
}


def main() -> None:
    rng = random.Random(42)

    # 1. Open the index from its declarative spec (JSON-round-trippable;
    #    the same dict a persistence checkpoint embeds).
    index = repro.open_index(SPEC)

    # 2. Load an initial population of objects (e.g. vehicles reporting GPS
    #    positions inside a city modelled as the unit square).
    objects = [(oid, Point(rng.random(), rng.random())) for oid in range(5_000)]
    index.load(objects)
    print("loaded:", index.describe())
    print("spec  :", repro.index_spec(index))

    # 3. Stream position updates as typed operations.  Each object drifts a
    #    small random step — the locality the bottom-up strategy exploits.
    num_updates = 20_000
    for _ in range(num_updates):
        oid = rng.randrange(5_000)
        position = index.position_of(oid)
        index.execute(
            Update(
                oid,
                Point(
                    min(1.0, max(0.0, position.x + rng.uniform(-0.02, 0.02))),
                    min(1.0, max(0.0, position.y + rng.uniform(-0.02, 0.02))),
                ),
            )
        )

    update_io = index.stats.total_physical_io
    print(f"updates: {num_updates}, avg disk I/O per update: {update_io / num_updates:.2f}")
    print("update outcome mix:", index.strategy.outcome_fractions())

    # 4. Query the fresh index.  Results arrive through streaming cursors:
    #    the tree traversal advances only as far as the caller reads.
    snapshot = index.io_snapshot()
    windows = [
        Rect(0.10, 0.10, 0.20, 0.20),
        Rect(0.45, 0.45, 0.55, 0.55),
        Rect(0.80, 0.05, 0.95, 0.25),
    ]
    for window in windows:
        cursor = index.execute(RangeQuery(window)).cursor()
        print(f"objects in {window}: {len(cursor.all())}")
    query_io = index.stats.delta_since(snapshot).total_physical_io
    print(f"avg disk I/O per query: {query_io / len(windows):.2f}")

    # 5. Nearest neighbours of a point of interest — consume only what you
    #    need: the first hit costs the I/O of one descent, not of k.
    cursor = index.execute(KNN(Point(0.5, 0.5), 5)).cursor()
    closest = cursor.fetch(1)[0]
    print(f"closest to the centre: object {closest[1]} at distance {closest[0]:.4f}")
    print("rest of the top 5:", [oid for _, oid in cursor])

    # 6. Batches: a mixed typed stream executes group-by-leaf and reports
    #    what it did and what it cost.
    report = index.execute_many(
        [Update(oid, Point(rng.random(), rng.random())) for oid in range(0, 200, 2)]
        + [RangeQuery(Rect(0.2, 0.2, 0.4, 0.5))]
    )
    print("batch  :", report.describe())

    # 7. The index can verify its own structural invariants at any time.
    print("validation:", index.validate())


if __name__ == "__main__":
    main()
