#!/usr/bin/env python
"""Tuning the bottom-up update strategy (epsilon, D, L) for a workload.

The paper exposes three knobs — the MBR-extension limit ε, the distance
threshold D, and the level threshold L — and Section 5 studies their effect.
This example runs a small sweep over those knobs on a single workload and
prints the resulting update/query trade-off, which is how a practitioner
would pick settings for their own update rate and movement pattern.

Run with::

    python examples/parameter_tuning.py
"""

from repro import IndexConfig, TuningParameters
from repro.bench.experiment import run_experiment
from repro.workload import WorkloadSpec

WORKLOAD = WorkloadSpec(
    num_objects=4_000,
    num_updates=8_000,
    num_queries=400,
    max_distance=0.03,
    seed=5,
)
PAGE_SIZE = 256  # keep the leaf-size-to-movement ratio close to the paper's


def run(label: str, params: TuningParameters) -> dict:
    config = IndexConfig(strategy="GBU", page_size=PAGE_SIZE, params=params)
    result = run_experiment(config, WORKLOAD)
    return {
        "variant": label,
        "update_io": result.avg_update_io,
        "query_io": result.avg_query_io,
        "top_down%": 100 * result.outcome_fractions.get("top_down", 0.0),
    }


def main() -> None:
    print("workload:", WORKLOAD.describe(), "\n")
    rows = []

    # Sweep epsilon (Figure 5(a)-(d)).
    for epsilon in (0.0, 0.003, 0.015, 0.03):
        rows.append(run(f"epsilon={epsilon}", TuningParameters(epsilon=epsilon)))

    # Sweep the distance threshold (Figure 5(e)-(f)).
    for threshold in (0.0, 0.03, 0.3):
        rows.append(
            run(f"D={threshold}", TuningParameters(distance_threshold=threshold))
        )

    # Sweep the level threshold (Figure 6(a)-(b)).
    for level in (0, 1, 3):
        rows.append(run(f"L={level}", TuningParameters(level_threshold=level)))

    header = f"{'variant':<14s} {'update I/O':>10s} {'query I/O':>10s} {'top-down %':>10s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['variant']:<14s} {row['update_io']:>10.2f} "
            f"{row['query_io']:>10.2f} {row['top_down%']:>9.1f}%"
        )

    best_updates = min(rows, key=lambda row: row["update_io"])
    best_queries = min(rows, key=lambda row: row["query_io"])
    print(
        f"\ncheapest updates: {best_updates['variant']}; "
        f"cheapest queries: {best_queries['variant']}.\n"
        "As in the paper, a small epsilon (0.003) with the maximum level "
        "threshold gives near-best update cost without sacrificing query "
        "performance."
    )


if __name__ == "__main__":
    main()
