#!/usr/bin/env python
"""Fleet tracking: the motivating scenario of the paper's introduction.

A delivery fleet of vehicles streams position samples into the database.
Dispatchers continuously ask two kinds of questions:

* "which vehicles are inside this district right now?" (window queries), and
* "which vehicles are closest to this pickup request?" (kNN queries).

The update volume dwarfs the query volume, which is exactly the workload the
bottom-up update strategy targets.  This example simulates a working day in
rounds: every round each vehicle reports a new position (vehicles follow
roads, so their movement has direction/trend), then the dispatcher runs its
queries.  At the end the script compares the disk I/O of the traditional
top-down update approach (TD) with the generalized bottom-up approach (GBU)
on the identical stream.

Run with::

    python examples/fleet_tracking.py
"""

import random

import repro
from repro import Point, Rect
from repro.api import KNN, RangeQuery, Update
from repro.workload import MovementModel

FLEET_SIZE = 3_000
ROUNDS = 8
DISTRICTS = [
    Rect(0.05, 0.05, 0.25, 0.25),   # harbour
    Rect(0.40, 0.40, 0.60, 0.60),   # centre
    Rect(0.70, 0.10, 0.95, 0.35),   # airport
    Rect(0.10, 0.70, 0.35, 0.95),   # industrial park
]
PICKUP_HOTSPOTS = [Point(0.5, 0.5), Point(0.15, 0.15), Point(0.82, 0.22)]


def simulate(strategy: str, seed: int = 7) -> dict:
    """Run the full day for one update strategy; return its cost summary."""
    rng = random.Random(seed)
    index = repro.open_index({"config": {"strategy": strategy}})

    # Initial fleet positions: vehicles start clustered around two depots.
    depots = [Point(0.2, 0.2), Point(0.75, 0.7)]
    fleet = []
    for vehicle in range(FLEET_SIZE):
        depot = depots[vehicle % len(depots)]
        fleet.append(
            (
                vehicle,
                Point(
                    min(1, max(0, depot.x + rng.gauss(0, 0.05))),
                    min(1, max(0, depot.y + rng.gauss(0, 0.05))),
                ),
            )
        )
    index.load(fleet)

    # Vehicles move with a persistent heading (roads), re-drawn occasionally.
    movement = MovementModel(
        max_distance=0.02, seed=seed + 1, trend_fraction=0.7, trend_strength=0.8
    )

    update_count = 0
    query_count = 0
    district_counts = {i: 0 for i in range(len(DISTRICTS))}

    for _round in range(ROUNDS):
        # --- every vehicle reports a new position (typed operations) -------
        for vehicle in range(FLEET_SIZE):
            new_position = movement.next_position(vehicle, index.position_of(vehicle))
            index.execute(Update(vehicle, new_position))
            update_count += 1

        # --- dispatcher queries (streaming cursors) ------------------------
        for district_id, district in enumerate(DISTRICTS):
            cursor = index.execute(RangeQuery(district)).cursor()
            district_counts[district_id] = len(cursor.all())
            query_count += 1
        for hotspot in PICKUP_HOTSPOTS:
            # Dispatch needs the closest free vehicle first; the cursor only
            # pays for what the dispatcher actually reads.
            index.execute(KNN(hotspot, 3)).cursor().fetch(1)
            query_count += 1

    index.validate()
    return {
        "strategy": strategy,
        "updates": update_count,
        "queries": query_count,
        "avg_io_per_operation": index.stats.total_physical_io / (update_count + query_count),
        "update_outcomes": index.strategy.outcome_fractions(),
        "district_counts": district_counts,
    }


def main() -> None:
    print(f"fleet of {FLEET_SIZE} vehicles, {ROUNDS} reporting rounds\n")
    results = [simulate("TD"), simulate("GBU")]
    for result in results:
        print(f"strategy {result['strategy']}:")
        print(f"  updates processed : {result['updates']}")
        print(f"  queries processed : {result['queries']}")
        print(f"  avg disk I/O / op : {result['avg_io_per_operation']:.2f}")
        if result["update_outcomes"]:
            mix = ", ".join(f"{k}={v:.1%}" for k, v in sorted(result["update_outcomes"].items()))
            print(f"  update outcome mix: {mix}")
        print(f"  vehicles per district (last round): {result['district_counts']}")
        print()
    td, gbu = results
    speedup = td["avg_io_per_operation"] / gbu["avg_io_per_operation"]
    print(f"GBU performs {speedup:.2f}x less disk I/O per operation than TD on this workload.")


if __name__ == "__main__":
    main()
